/**
 * @file
 * Tests for the parallel experiment harness: pool mechanics (coverage,
 * exception propagation, WISC_JOBS sizing) and the core regression —
 * a multi-threaded runNormalizedExperiment() must produce results
 * bit-identical to the serial path.
 *
 * This suite is built as its own binary (wisc_parallel_tests) and
 * carries the `tsan` ctest label: configure with -DWISC_SANITIZE=thread
 * and run `ctest -L tsan` to check the concurrent path under
 * ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "common/log.hh"
#include "harness/experiments.hh"
#include "harness/parallel_runner.hh"

namespace wisc {
namespace {

TEST(ParallelRunnerTest, ForEachCoversEveryIndexExactlyOnce)
{
    ParallelRunner pool(4);
    EXPECT_EQ(pool.jobs(), 4u);

    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<unsigned>> hits(kN);
    pool.forEach(kN, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ParallelRunnerTest, InlineModeRunsOnCallerThread)
{
    ParallelRunner pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    std::vector<std::size_t> order;
    pool.forEach(5, [&](std::size_t i) { order.push_back(i); });
    // Single-job mode is the exact serial path: in order, same thread.
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelRunnerTest, PropagatesTaskExceptions)
{
    for (unsigned jobs : {1u, 4u}) {
        ParallelRunner pool(jobs);
        std::atomic<unsigned> ran{0};
        EXPECT_THROW(
            pool.forEach(16,
                         [&](std::size_t i) {
                             ++ran;
                             if (i == 7)
                                 throw std::runtime_error("boom");
                         }),
            std::runtime_error);
        // All tasks still executed; the failure was not lost and no
        // task was abandoned mid-queue.
        EXPECT_EQ(ran.load(), 16u);
    }
}

TEST(ParallelRunnerTest, SubmitReturnsWaitableFuture)
{
    ParallelRunner pool(2);
    std::atomic<bool> done{false};
    auto fut = pool.submit([&] { done = true; });
    fut.get();
    EXPECT_TRUE(done.load());
}

TEST(ParallelRunnerTest, WiscJobsEnvOverridesDefault)
{
    ASSERT_EQ(setenv("WISC_JOBS", "3", 1), 0);
    EXPECT_EQ(ParallelRunner::defaultJobs(), 3u);
    EXPECT_EQ(ParallelRunner(0).jobs(), 3u);

    // Invalid values fall back to hardware concurrency.
    ASSERT_EQ(setenv("WISC_JOBS", "zany", 1), 0);
    EXPECT_GE(ParallelRunner::defaultJobs(), 1u);
    ASSERT_EQ(unsetenv("WISC_JOBS"), 0);
}

/** The tentpole regression: the parallel sweep must be bit-identical
 *  to the serial sweep, raw outcomes included. */
TEST(ParallelExperimentTest, MatchesSerialPathExactly)
{
    SimParams perfConf;
    perfConf.oracle.perfectConfidence = true;
    const std::vector<SeriesSpec> series = {
        {"wish-jjl", BinaryVariant::WishJumpJoinLoop, SimParams{}},
        {"wish-jjl(perf)", BinaryVariant::WishJumpJoinLoop, perfConf},
    };
    const std::vector<std::string> benches = {"crafty", "mcf"};

    NormalizedResults serial = runNormalizedExperiment(
        series, InputSet::A, SimParams{}, benches, /*jobs=*/1);
    NormalizedResults parallel = runNormalizedExperiment(
        series, InputSet::A, SimParams{}, benches, /*jobs=*/4);

    ASSERT_EQ(serial.benchmarks, parallel.benchmarks);
    ASSERT_EQ(serial.relTime.size(), parallel.relTime.size());
    for (std::size_t b = 0; b < serial.relTime.size(); ++b)
        for (std::size_t s = 0; s < serial.relTime[b].size(); ++s)
            EXPECT_EQ(serial.relTime[b][s], parallel.relTime[b][s])
                << benches[b] << "/" << series[s].label;
    for (std::size_t s = 0; s < series.size(); ++s) {
        EXPECT_EQ(serial.avg[s], parallel.avg[s]);
        EXPECT_EQ(serial.avgNoMcf[s], parallel.avgNoMcf[s]);
    }

    // Raw run data must match too: every counter of every cell.
    ASSERT_EQ(serial.baseline.size(), parallel.baseline.size());
    for (std::size_t b = 0; b < serial.baseline.size(); ++b) {
        EXPECT_EQ(serial.baseline[b].result.cycles,
                  parallel.baseline[b].result.cycles);
        EXPECT_EQ(serial.baseline[b].stats, parallel.baseline[b].stats);
        for (std::size_t s = 0; s < series.size(); ++s)
            EXPECT_EQ(serial.outcomes[b][s].stats,
                      parallel.outcomes[b][s].stats);
    }
}

/** Concurrent compilation + simulation under an oversubscribed pool —
 *  primarily a ThreadSanitizer target (ctest -L tsan). */
TEST(ParallelExperimentTest, OversubscribedPoolIsRaceFree)
{
    ParallelRunner pool(8);
    std::atomic<std::uint64_t> totalCycles{0};
    pool.forEach(8, [&](std::size_t i) {
        CompiledWorkload w = compileWorkload(i % 2 ? "gap" : "crafty");
        RunOutcome r = run(
            RunRequest{w, BinaryVariant::WishJumpJoinLoop, InputSet::A});
        EXPECT_TRUE(r.result.halted);
        totalCycles += r.result.cycles;
    });
    EXPECT_GT(totalCycles.load(), 0u);
}

} // namespace
} // namespace wisc
