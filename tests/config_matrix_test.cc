/**
 * @file
 * Machine-configuration matrix: every combination of window size,
 * pipeline depth, predication mechanism, and wish-hardware setting must
 * run the wish binary to completion with the correct architectural
 * result (the core cross-checks against the reference emulator
 * internally), and basic monotonicity must hold (a strictly weaker
 * machine is not faster).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "harness/runner.hh"

namespace wisc {
namespace {

using Config = std::tuple<unsigned /*rob*/, unsigned /*stages*/,
                          PredMechanism, bool /*wish*/>;

class ConfigMatrix : public ::testing::TestWithParam<Config>
{
  protected:
    static const CompiledWorkload &
    workload()
    {
        static CompiledWorkload w = compileWorkload("crafty");
        return w;
    }
};

INSTANTIATE_TEST_SUITE_P(
    Machines, ConfigMatrix,
    ::testing::Combine(::testing::Values(128u, 512u),
                       ::testing::Values(10u, 30u),
                       ::testing::Values(PredMechanism::CStyle,
                                         PredMechanism::SelectUop),
                       ::testing::Bool()),
    [](const auto &info) {
        return "rob" + std::to_string(std::get<0>(info.param)) +
               "_st" + std::to_string(std::get<1>(info.param)) +
               (std::get<2>(info.param) == PredMechanism::CStyle
                    ? "_cstyle"
                    : "_select") +
               (std::get<3>(info.param) ? "_wish" : "_nowish");
    });

TEST_P(ConfigMatrix, WishBinaryRunsCorrectly)
{
    auto [rob, stages, mech, wishOn] = GetParam();
    SimParams p;
    p.robSize = rob;
    p.iqSize = rob / 4;
    p.lsqSize = rob / 2;
    p.pipelineStages = stages;
    p.predMech = mech;
    p.wishEnabled = wishOn;

    // checkFinalState (on by default) panics on any architectural
    // divergence from the reference emulator.
    RunOutcome r = run(RunRequest{workload(),
                                  BinaryVariant::WishJumpJoinLoop,
                                  InputSet::A, p});
    ASSERT_TRUE(r.result.halted);
    EXPECT_GT(r.result.ipc(), 0.05);
    EXPECT_LT(r.result.ipc(), 8.0);
}

TEST(ConfigMonotonicity, SmallerWindowIsNotFaster)
{
    CompiledWorkload w = compileWorkload("parser");
    SimParams big;
    SimParams small = big;
    small.robSize = 64;
    small.iqSize = 16;
    small.lsqSize = 32;
    RunOutcome rb =
        run(RunRequest{w, BinaryVariant::Normal, InputSet::A, big});
    RunOutcome rs =
        run(RunRequest{w, BinaryVariant::Normal, InputSet::A, small});
    EXPECT_GE(rs.result.cycles, rb.result.cycles);
}

TEST(ConfigMonotonicity, DeeperPipelineIsNotFaster)
{
    CompiledWorkload w = compileWorkload("bzip2");
    SimParams shallow;
    shallow.pipelineStages = 10;
    SimParams deep;
    deep.pipelineStages = 30;
    RunOutcome rs =
        run(RunRequest{w, BinaryVariant::Normal, InputSet::A, shallow});
    RunOutcome rd =
        run(RunRequest{w, BinaryVariant::Normal, InputSet::A, deep});
    EXPECT_GE(rd.result.cycles, rs.result.cycles);
}

TEST(ConfigMonotonicity, FewerMshrsAreNotFaster)
{
    CompiledWorkload w = compileWorkload("mcf");
    SimParams many;
    SimParams few = many;
    few.maxOutstandingMisses = 1;
    RunOutcome rm =
        run(RunRequest{w, BinaryVariant::Normal, InputSet::A, many});
    RunOutcome rf =
        run(RunRequest{w, BinaryVariant::Normal, InputSet::A, few});
    EXPECT_GE(rf.result.cycles, rm.result.cycles);
}

TEST(ConfigOracle, WishBinariesRunUnderEveryOracle)
{
    CompiledWorkload w = compileWorkload("gzip");
    for (int knob = 0; knob < 4; ++knob) {
        SimParams p;
        if (knob == 0)
            p.oracle.perfectCBP = true;
        if (knob == 1)
            p.oracle.perfectConfidence = true;
        if (knob == 2)
            p.oracle.noDepend = true;
        if (knob == 3) {
            p.oracle.noDepend = true;
            p.oracle.noFetch = true;
        }
        RunOutcome r = run(RunRequest{
            w, BinaryVariant::WishJumpJoinLoop, InputSet::A, p});
        EXPECT_TRUE(r.result.halted) << "oracle knob " << knob;
        if (knob == 0)
            EXPECT_EQ(r.stat("core.flushes"), 0u)
                << "perfect CBP never flushes";
    }
}

} // namespace
} // namespace wisc
