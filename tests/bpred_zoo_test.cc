/**
 * @file
 * Predictor-zoo tests: the speculative-update/recover history contract
 * shared by every IBranchPredictor (checked against an oracle that only
 * ever observes resolved outcomes in order, across the fuzzer's
 * SimParams matrix), TAGE learning/allocation/confidence behavior, the
 * cheap classic predictors, and the factory wiring.
 */

#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "fuzz/fuzzer.hh"
#include "uarch/bpred.hh"
#include "uarch/bpred_iface.hh"
#include "uarch/simple_bpred.hh"
#include "uarch/tage.hh"

namespace wisc {
namespace {

const PredictorKind kZoo[] = {PredictorKind::Hybrid,
                              PredictorKind::Bimodal,
                              PredictorKind::TwoLevel,
                              PredictorKind::Tage};

const char *
kindName(PredictorKind k)
{
    switch (k) {
      case PredictorKind::Hybrid: return "hybrid";
      case PredictorKind::Bimodal: return "bimodal";
      case PredictorKind::TwoLevel: return "two_level";
      case PredictorKind::Tage: return "tage";
    }
    return "?";
}

/** One in-flight predicted branch, as the core would track it. */
struct InFlight
{
    std::uint32_t pc;
    bool predicted;
    bool actual;
    BpredCheckpoint ckpt;
};

/**
 * Drive a predictor through a randomized fetch/resolve schedule with a
 * bounded in-flight window, flushing (recover + discard younger) on
 * every mispredict, and check that whenever the window drains the
 * speculative global history equals an oracle shift register that only
 * ever observed resolved outcomes in order. This is the recovery
 * contract the core relies on: wrong-path history bits must leave no
 * residue.
 */
void
checkHistoryOracle(PredictorKind kind, const SimParams &params,
                   std::uint64_t seed, const std::string &label)
{
    SimParams p = params;
    p.predictor = kind;
    StatSet stats;
    auto bp = makeBranchPredictor(p, stats);

    Rng rng(seed);
    std::deque<InFlight> window;
    std::uint64_t oracle = 0;
    unsigned drains = 0;

    for (int step = 0; step < 4000; ++step) {
        bool fetch = window.size() < 6 &&
                     (window.empty() || rng.range(0, 2) != 0);
        if (fetch) {
            InFlight f;
            f.pc = static_cast<std::uint32_t>(rng.range(1, 24));
            // Per-PC biased outcomes so predictions are sometimes
            // right and sometimes wrong.
            f.actual = rng.range(0, 9) < (f.pc % 10);
            f.predicted = bp->predict(f.pc, f.ckpt);
            bp->updateSpeculative(f.pc, f.predicted);
            window.push_back(f);
            continue;
        }

        // Resolve + retire the oldest in-flight branch.
        InFlight f = window.front();
        window.pop_front();
        if (f.predicted != f.actual) {
            // Flush: younger speculation (and its history bits) dies.
            bp->recover(f.pc, f.actual, f.ckpt);
            window.clear();
        }
        bp->train(f.pc, f.actual, f.ckpt);
        oracle = (oracle << 1) | (f.actual ? 1 : 0);

        if (window.empty()) {
            ++drains;
            ASSERT_EQ(bp->globalHistory(), oracle)
                << label << ": speculative history diverged from the "
                << "resolved-outcome oracle at step " << step;
        }
    }
    EXPECT_GT(drains, 100u) << label << ": schedule never drained; "
                               "the invariant was barely exercised";
}

class ZooHistoryContract
    : public ::testing::TestWithParam<PredictorKind>
{
};

INSTANTIATE_TEST_SUITE_P(
    Zoo, ZooHistoryContract, ::testing::ValuesIn(kZoo),
    [](const ::testing::TestParamInfo<PredictorKind> &info) {
        return kindName(info.param);
    });

TEST_P(ZooHistoryContract, RecoverMatchesResolvedOutcomeOracle)
{
    checkHistoryOracle(GetParam(), SimParams{}, 7,
                       std::string("default/") + kindName(GetParam()));
}

TEST_P(ZooHistoryContract, HoldsAcrossFuzzerParamsMatrix)
{
    // The same invariant on every machine point the differential
    // fuzzer exercises (ConfKind is irrelevant here — confidence never
    // touches predictor history — but geometry knobs are not).
    for (const ParamsPoint &pt : defaultParamsMatrix(false))
        checkHistoryOracle(GetParam(), pt.params, 11,
                           pt.label + "/" + kindName(GetParam()));
}

TEST_P(ZooHistoryContract, DeterministicAcrossInstances)
{
    SimParams p;
    p.predictor = GetParam();
    StatSet sa, sb;
    auto a = makeBranchPredictor(p, sa);
    auto b = makeBranchPredictor(p, sb);
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        auto pc = static_cast<std::uint32_t>(rng.range(1, 40));
        bool actual = rng.range(0, 1) != 0;
        BpredCheckpoint ca, cb;
        bool pa = a->predict(pc, ca);
        bool pb = b->predict(pc, cb);
        ASSERT_EQ(pa, pb) << "instance divergence at step " << i;
        ASSERT_EQ(ca.globalHistory, cb.globalHistory);
        a->updateSpeculative(pc, pa);
        b->updateSpeculative(pc, pb);
        a->train(pc, actual, ca);
        b->train(pc, actual, cb);
        a->recover(pc, actual, ca);
        b->recover(pc, actual, cb);
    }
}

// ---- TAGE specifics ---------------------------------------------------

SimParams
smallTage()
{
    SimParams p;
    p.predictor = PredictorKind::Tage;
    p.tageTables = 4;
    p.tageEntriesLog2 = 8;
    p.tageBaseEntriesLog2 = 10;
    p.tageMinHist = 2;
    p.tageMaxHist = 32;
    p.tageResetPeriod = 4096;
    return p;
}

TEST(TageTest, GeometricHistoryLengthsAreStrictlyIncreasing)
{
    StatSet stats;
    SimParams p = smallTage();
    TagePredictor bp(p, stats);
    EXPECT_EQ(bp.historyLength(0), p.tageMinHist);
    EXPECT_EQ(bp.historyLength(p.tageTables - 1), p.tageMaxHist);
    for (unsigned t = 1; t < p.tageTables; ++t)
        EXPECT_GT(bp.historyLength(t), bp.historyLength(t - 1));
}

TEST(TageTest, LearnsLongPatternBimodalCannot)
{
    // Period-12 direction pattern: per-PC 2-bit counters hover near
    // chance, but a 12-bit history slice pins every phase exactly.
    StatSet st, sb;
    TagePredictor tage(smallTage(), st);
    BimodalPredictor bim(SimParams{}, sb);
    int tageCorrect = 0, bimCorrect = 0, total = 0;
    for (int i = 0; i < 6000; ++i) {
        bool dir = (i % 12) < 5;
        BpredCheckpoint ct, cb;
        bool pt = tage.predict(9, ct);
        bool pb = bim.predict(9, cb);
        if (i >= 3000) {
            ++total;
            tageCorrect += pt == dir;
            bimCorrect += pb == dir;
        }
        tage.updateSpeculative(9, pt);
        bim.updateSpeculative(9, pb);
        tage.train(9, dir, ct);
        bim.train(9, dir, cb);
        tage.recover(9, dir, ct); // keep history exact
        bim.recover(9, dir, cb);
    }
    EXPECT_GT(static_cast<double>(tageCorrect) / total, 0.95)
        << "TAGE failed to capture a period-12 pattern";
    EXPECT_LT(static_cast<double>(bimCorrect) / total, 0.75)
        << "pattern is bimodal-predictable; test is vacuous";
}

TEST(TageTest, MispredictsAllocateTaggedEntries)
{
    StatSet stats;
    TagePredictor bp(smallTage(), stats);
    Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
        auto pc = static_cast<std::uint32_t>(rng.range(1, 8));
        bool dir = rng.range(0, 1) != 0;
        BpredCheckpoint c;
        bool pred = bp.predict(pc, c);
        bp.updateSpeculative(pc, pred);
        bp.train(pc, dir, c);
        bp.recover(pc, dir, c);
    }
    EXPECT_GT(stats.get("bpred.tage.allocs"), 0u);
    EXPECT_GT(stats.get("bpred.tage.provider_hits"), 0u);
}

TEST(TageConfidenceTest, StableBranchHighColdBranchLow)
{
    StatSet stats;
    TagePredictor bp(smallTage(), stats);
    TageConfidence conf(bp, stats);
    // Cold PC: base counter is at its weakly-taken reset value.
    EXPECT_FALSE(conf.estimate(123, 0));
    // Saturate an always-taken branch.
    for (int i = 0; i < 100; ++i) {
        BpredCheckpoint c;
        bool pred = bp.predict(7, c);
        bp.updateSpeculative(7, pred);
        bp.train(7, true, c);
        bp.recover(7, true, c);
    }
    EXPECT_TRUE(conf.estimate(7, bp.globalHistory()));
    EXPECT_GT(stats.get("conf.queries"), 0u);
}

// ---- cheap classics ---------------------------------------------------

TEST(BimodalTest, LearnsBiasedBranch)
{
    StatSet stats;
    BimodalPredictor bp(SimParams{}, stats);
    for (int i = 0; i < 10; ++i) {
        BpredCheckpoint c;
        bool pred = bp.predict(3, c);
        bp.updateSpeculative(3, pred);
        bp.train(3, false, c);
        bp.recover(3, false, c);
    }
    BpredCheckpoint c;
    EXPECT_FALSE(bp.predict(3, c));
}

TEST(TwoLevelTest, LearnsAlternationViaGlobalHistory)
{
    StatSet stats;
    SimParams p;
    p.twoLevelEntries = 4096;
    p.twoLevelHistBits = 6;
    TwoLevelPredictor bp(p, stats);
    bool dir = false;
    int correct = 0, total = 0;
    for (int i = 0; i < 800; ++i) {
        dir = !dir;
        BpredCheckpoint c;
        bool pred = bp.predict(21, c);
        if (i >= 400) {
            ++total;
            correct += pred == dir;
        }
        bp.updateSpeculative(21, pred);
        bp.train(21, dir, c);
        bp.recover(21, dir, c);
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.95);
}

// ---- factory wiring ---------------------------------------------------

TEST(BpredFactoryTest, BuildsEveryKind)
{
    for (PredictorKind k : kZoo) {
        SimParams p;
        p.predictor = k;
        StatSet stats;
        auto bp = makeBranchPredictor(p, stats);
        ASSERT_NE(bp, nullptr) << kindName(k);
        BpredCheckpoint c;
        bp->predict(1, c); // must not throw
    }
}

TEST(BpredFactoryTest, TageConfidenceRequiresTagePredictor)
{
    SimParams p;
    p.confKind = ConfKind::Tage; // predictor left at Hybrid
    StatSet stats;
    auto bp = makeBranchPredictor(p, stats);
    EXPECT_THROW(makeConfidenceEstimator(p, stats, *bp), FatalError);
}

TEST(BpredFactoryTest, TagePlusTageConfidenceWiresUp)
{
    SimParams p;
    p.predictor = PredictorKind::Tage;
    p.confKind = ConfKind::Tage;
    StatSet stats;
    auto bp = makeBranchPredictor(p, stats);
    auto conf = makeConfidenceEstimator(p, stats, *bp);
    ASSERT_NE(conf, nullptr);
    conf->estimate(1, 0);
    EXPECT_EQ(stats.get("conf.queries"), 1u);
}

} // namespace
} // namespace wisc
