/**
 * @file
 * Detailed timing-model tests: MSHR limiting, the fetch group rules
 * (taken-branch stop, conditional-branch cap), select-µop expansion
 * accounting, NO-FETCH's treatment of unconditional compares, and the
 * predicate-dependency-elimination speedup in high-confidence mode.
 */

#include <gtest/gtest.h>

#include "compiler/builder.hh"
#include "compiler/driver.hh"
#include "isa/assembler.hh"
#include "uarch/core.hh"

namespace wisc {
namespace {

SimResult
run(const Program &p, const SimParams &params, StatSet &stats)
{
    return simulate(p, params, stats);
}

SimResult
run(const Program &p, const SimParams &params = SimParams{})
{
    StatSet stats;
    return run(p, params, stats);
}

TEST(CoreDetail, MshrLimitThrottlesIndependentMisses)
{
    // 64 independent loads from distinct cold lines.
    std::string src = "li r6, 0x300000\nli r4, 0\n";
    for (int i = 0; i < 64; ++i)
        src += "ld r" + std::to_string(10 + (i % 16)) + ", r6, " +
               std::to_string(i * 4096) + "\n";
    src += "halt\n";
    Program p = assemble(src);

    SimParams wide;
    wide.maxOutstandingMisses = 64;
    SimParams narrow;
    narrow.maxOutstandingMisses = 2;
    SimResult rw = run(p, wide);
    SimResult rn = run(p, narrow);
    EXPECT_GT(rn.cycles, rw.cycles * 3)
        << "2 MSHRs must serialize what 64 MSHRs overlap";
}

TEST(CoreDetail, FetchStopsAtPredictedTakenBranch)
{
    // A tight loop of 2 µops: fetch can never exceed ~2 µops/cycle
    // because every group ends at the taken backward branch.
    Program p = assemble(R"(
        li r5, 0
        loop:
        addi r5, r5, 1
        cmpi.lt p1, p0, r5, 3000
        br p1, loop
        li r4, 1
        halt
    )");
    StatSet stats;
    SimResult r = run(p, SimParams{}, stats);
    // 3 µops per iteration, one fetch group per iteration.
    EXPECT_GT(r.cycles, 2900u);
}

TEST(CoreDetail, SelectUopDoublesPredicatedUops)
{
    Program p = assemble(R"(
        pset p1, 1
        li r5, 0
        loop:
        (p1) addi r6, r6, 1
        (p1) addi r7, r7, 1
        addi r5, r5, 1
        cmpi.lt p2, p0, r5, 100
        br p2, loop
        li r4, 1
        halt
    )");
    SimParams cstyle;
    SimParams sel;
    sel.predMech = PredMechanism::SelectUop;
    StatSet s1, s2;
    run(p, cstyle, s1);
    run(p, sel, s2);
    // Two predicated register-writing µops per iteration expand 2x.
    std::uint64_t diff =
        s2.get("core.retired_uops") - s1.get("core.retired_uops");
    EXPECT_GE(diff, 190u);
    EXPECT_LE(diff, 210u);
}

TEST(CoreDetail, NoFetchKeepsUncCompareEffects)
{
    // The unc compare under a FALSE guard must still clear its targets
    // even with the NO-FETCH oracle, or results would change.
    KernelBuilder b;
    b.li(10, 7);
    b.cmpi(Opcode::CmpLtI, 1, 2, 10, 5); // false: p1=0, p2=1
    b.ifThenElse(1, 2, [&] { b.li(4, 100); }, [&] { b.li(4, 200); });
    IrFunction fn = b.finish();
    auto variants = compileAllVariants(fn);
    const Program &pred =
        variants.at(BinaryVariant::BaseMax).program;

    SimParams nofetch;
    nofetch.oracle.noFetch = true;
    SimResult r = run(pred, nofetch); // checkFinalState validates
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.resultReg, 200);
}

TEST(CoreDetail, HighConfPredicatePredictionSpeedsDependents)
{
    // A predicated chain fed by a slow (cache-missing) compare input:
    // in high-confidence mode the predicate is predicted, so the chain
    // need not wait. Compare wish hardware on vs off on the same
    // wish binary with a perfectly predictable branch.
    KernelBuilder b;
    b.li(10, 0);
    b.li(12, 0x400000);
    b.li(4, 0);
    b.doWhileLoop(7, [&] {
        b.muli(30, 10, 4096);
        b.add(30, 30, 12);
        b.ld(20, 30, 0); // always 0: cold miss
        b.cmpi(Opcode::CmpGeI, 1, 2, 20, 0); // always TRUE
        b.ifThenElse(
            1, 2,
            [&] {
                b.addi(4, 4, 1);
                b.addi(4, 4, 2);
                b.addi(4, 4, 3);
                b.addi(4, 4, 4);
                b.addi(4, 4, 5);
                b.addi(4, 4, 6);
            },
            [&] {
                b.addi(4, 4, 7);
                b.addi(4, 4, 8);
                b.addi(4, 4, 9);
                b.addi(4, 4, 10);
                b.addi(4, 4, 11);
                b.addi(4, 4, 12);
            });
        b.addi(10, 10, 1);
        b.cmpi(Opcode::CmpLtI, 7, 0, 10, 300);
    });
    IrFunction fn = b.finish();
    auto variants = compileAllVariants(fn);
    const Program &wjj =
        variants.at(BinaryVariant::WishJumpJoin).program;

    SimParams off;
    off.wishEnabled = false;
    SimParams perfectConf;
    perfectConf.oracle.perfectConfidence = true;

    SimResult roff = run(wjj, off);
    SimResult rperf = run(wjj, perfectConf);
    // With perfect confidence every instance runs in high-confidence
    // mode: the predicate is predicted, the arms never wait for the
    // missing load, and performance matches plain branch prediction.
    EXPECT_LE(rperf.cycles, roff.cycles * 21 / 20);

    // The real estimator starts cold and conservatively predicates some
    // early instances (Figure 11's low-confidence-correct overhead), so
    // it may only approach that bound.
    SimResult rreal = run(wjj, SimParams{});
    EXPECT_LE(rreal.cycles, roff.cycles * 3 / 2);
    EXPECT_GE(rreal.cycles, rperf.cycles);
}

TEST(CoreDetail, FlushRestoresStoreOrdering)
{
    // Store -> mispredicted branch -> wrong-path store: after the
    // flush, a load must see the first store's value.
    Program p = assemble(R"(
        li r6, 0x70000
        li r5, 0
        li r9, 777
        loop:
        muli r9, r9, 69069
        addi r9, r9, 13
        shri r7, r9, 15
        andi r7, r7, 1
        st r7, r6, 0
        cmpi.eq p1, p2, r7, 1
        br p1, skip
        addi r4, r4, 1
        st r4, r6, 8
        skip:
        ld r8, r6, 0
        add r4, r4, r8
        addi r5, r5, 1
        cmpi.lt p3, p0, r5, 400
        br p3, loop
        halt
    )");
    SimResult r = run(p); // checkFinalState cross-checks vs emulator
    EXPECT_TRUE(r.halted);
}

TEST(CoreDetail, MaxCyclesSafetyStopsRunawayProgram)
{
    Program p = assemble(R"(
        loop:
        jmp loop
        halt
    )");
    SimParams params;
    params.maxCycles = 5000;
    params.checkFinalState = false;
    SimResult r = run(p, params);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.cycles, 5000u);
}

TEST(CoreDetail, DeeperPipelineRaisesMispredictPenaltyRoughlyLinearly)
{
    Program p = assemble(R"(
        li r5, 0
        li r6, 424242
        loop:
        muli r6, r6, 1103515245
        addi r6, r6, 12345
        shri r7, r6, 17
        andi r7, r7, 1
        cmpi.eq p1, p2, r7, 1
        br p1, skip
        addi r4, r4, 1
        skip:
        addi r5, r5, 1
        cmpi.lt p3, p0, r5, 1200
        br p3, loop
        halt
    )");
    SimParams d10, d30;
    d10.pipelineStages = 10;
    d30.pipelineStages = 30;
    StatSet s10, s30;
    SimResult r10 = run(p, d10, s10);
    SimResult r30 = run(p, d30, s30);

    double m10 = static_cast<double>(s10.get("core.branch_mispredicts"));
    double m30 = static_cast<double>(s30.get("core.branch_mispredicts"));
    ASSERT_GT(m10, 100.0);
    ASSERT_GT(m30, 100.0);
    double extra =
        (static_cast<double>(r30.cycles) - static_cast<double>(r10.cycles)) /
        ((m10 + m30) / 2.0);
    // ~20 stages of extra penalty per misprediction.
    EXPECT_GT(extra, 10.0);
    EXPECT_LT(extra, 35.0);
}

} // namespace
} // namespace wisc
