#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace wisc {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeDegenerate)
{
    Rng r(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.range(42, 42), 42);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng r(1);
    for (int i = 0; i < 10000; ++i) {
        std::int64_t v = r.range(-64, 64);
        EXPECT_GE(v, -64);
        EXPECT_LE(v, 64);
    }
}

/**
 * Regression: the previous implementation computed hi - lo + 1 in
 * *signed* arithmetic, which overflows (UB) as soon as the span exceeds
 * INT64_MAX — e.g. range(INT64_MIN, anything >= -1) or the full span.
 * The span math must be unsigned, and the full span must not compute
 * span + 1 == 0 (modulo by zero).
 */
TEST(Rng, RangeWideSpansDoNotOverflow)
{
    constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
    constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

    Rng r(99);
    bool sawNegative = false, sawPositive = false;
    for (int i = 0; i < 10000; ++i) {
        std::int64_t v = r.range(kMin, kMax); // full span
        sawNegative |= v < 0;
        sawPositive |= v > 0;
    }
    // 10k draws from the full 64-bit span hit both halves with
    // probability 1 - 2^-10000.
    EXPECT_TRUE(sawNegative);
    EXPECT_TRUE(sawPositive);

    for (int i = 0; i < 10000; ++i) {
        std::int64_t v = r.range(kMin, 0); // span = 2^63 (> INT64_MAX)
        EXPECT_LE(v, 0);
    }
    for (int i = 0; i < 10000; ++i) {
        std::int64_t v = r.range(-1, kMax); // span = 2^63
        EXPECT_GE(v, -1);
    }
}

/** The fix must not change the sequence for ordinary spans: generated
 *  fuzz programs (and any seeded workload) stay bit-identical. */
TEST(Rng, RangeMatchesModuloFormulaForNarrowSpans)
{
    Rng a(2024), b(2024);
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = a.range(-100, 100);
        std::int64_t expect =
            -100 + static_cast<std::int64_t>(b.next() % 201u);
        EXPECT_EQ(v, expect);
    }
}

TEST(Rng, MixHashSpreadsNearbySeeds)
{
    EXPECT_NE(mixHash(1), mixHash(2));
    EXPECT_NE(mixHash(0), mixHash(1));
    // Identity must be stable (reproducer seeds are persisted).
    EXPECT_EQ(mixHash(42), mixHash(42));
}

} // namespace
} // namespace wisc
