/**
 * @file
 * Tests for the compiler: IR construction/lowering, region discovery,
 * if-conversion, wish jump/join generation, wish loops, the cost model,
 * and the architectural-equivalence invariant across all five binary
 * variants of Table 3.
 */

#include <gtest/gtest.h>

#include "arch/emulator.hh"
#include "common/log.hh"
#include "compiler/analysis.hh"
#include "compiler/builder.hh"
#include "compiler/cost.hh"
#include "compiler/driver.hh"
#include "compiler/ifconvert.hh"
#include "compiler/simplify.hh"
#include "compiler/wishloop.hh"

namespace wisc {
namespace {

/** Counts of each branch flavor in a lowered program. */
struct BranchCounts
{
    unsigned normal = 0, wishJump = 0, wishJoin = 0, wishLoop = 0;
};

BranchCounts
countBranches(const Program &p)
{
    BranchCounts c;
    for (const Instruction &inst : p.code()) {
        if (inst.op != Opcode::Br)
            continue;
        switch (inst.wish) {
          case WishKind::None: ++c.normal; break;
          case WishKind::Jump: ++c.wishJump; break;
          case WishKind::Join: ++c.wishJoin; break;
          case WishKind::Loop: ++c.wishLoop; break;
        }
    }
    return c;
}

/**
 * The paper's Figure 3 hammock: if (cond) b = 0; else b = 1; executed in
 * a loop over varying data so every variant has work to do. r4 collects
 * a checksum.
 */
IrFunction
buildFigure3Kernel(int trip = 50)
{
    KernelBuilder b;
    b.li(10, 0);    // i
    b.li(4, 0);     // checksum
    b.li(11, trip); // N
    b.doWhileLoop(5, [&] {
        b.andi(12, 10, 3); // pseudo-data: cond = (i & 3) == 0
        b.cmpi(Opcode::CmpEqI, 1, 2, 12, 0);
        b.ifThenElse(
            1, 2,
            [&] { // then: b = 0
                b.li(13, 0);
                b.li(20, 7); // padding so the arm is big enough to wish
                b.add(13, 13, 20);
                b.muli(21, 13, 3);
                b.add(13, 13, 21);
                b.addi(13, 13, -1);
            },
            [&] { // else: b = 1
                b.li(13, 1);
                b.li(22, 9);
                b.add(13, 13, 22);
                b.muli(23, 13, 2);
                b.add(13, 13, 23);
                b.addi(13, 13, 4);
            });
        b.add(4, 4, 13);
        b.addi(10, 10, 1);
        b.cmp(Opcode::CmpLt, 5, 0, 10, 11);
    });
    return b.finish();
}

TEST(IrTest, LowerSimpleDiamond)
{
    IrFunction fn = buildFigure3Kernel();
    Program p = fn.lower();
    p.validate();

    Emulator emu;
    EmuResult r = emu.run(p);
    EXPECT_TRUE(r.halted);
    EXPECT_NE(r.resultReg, 0);
}

TEST(IrTest, ValidateCatchesControlInBody)
{
    IrFunction fn;
    BlockId b = fn.newBlock();
    fn.setEntry(b);
    Instruction br;
    br.op = Opcode::Jmp;
    br.target = 0;
    fn.block(b).insts.push_back(br);
    EXPECT_THROW(fn.validate(), FatalError);
}

TEST(IrTest, PredAllocatorNeverReuses)
{
    IrFunction fn;
    fn.setMaxUserPred(5);
    PredIdx a = fn.allocPred();
    PredIdx b = fn.allocPred();
    EXPECT_NE(a, b);
    EXPECT_GT(a, 5);
    EXPECT_GT(b, 5);
}

TEST(IrTest, PredAllocatorExhaustionIsFatal)
{
    IrFunction fn;
    fn.setMaxUserPred(13);
    EXPECT_NO_THROW(fn.allocPred()); // p15
    EXPECT_NO_THROW(fn.allocPred()); // p14
    EXPECT_THROW(fn.allocPred(), FatalError);
}

TEST(AnalysisTest, PostdominatorsOfDiamond)
{
    KernelBuilder b;
    b.cmpi(Opcode::CmpEqI, 1, 2, 10, 0);
    b.ifThenElse(1, 2, [&] { b.li(5, 1); }, [&] { b.li(5, 2); });
    IrFunction fn = b.finish();

    auto ipdom = immediatePostdominators(fn);
    // Entry(0) branches to else(1)/then(2), joining at 3.
    EXPECT_EQ(ipdom[0], 3u);
    EXPECT_EQ(ipdom[1], 3u);
    EXPECT_EQ(ipdom[2], 3u);
}

TEST(AnalysisTest, RegionBlocksOfDiamond)
{
    KernelBuilder b;
    b.cmpi(Opcode::CmpEqI, 1, 2, 10, 0);
    b.ifThenElse(1, 2, [&] { b.li(5, 1); }, [&] { b.li(5, 2); });
    IrFunction fn = b.finish();

    auto region = regionBlocks(fn, 0, 3);
    ASSERT_EQ(region.size(), 2u);
    EXPECT_EQ(region[0], 1u);
    EXPECT_EQ(region[1], 2u);
    EXPECT_TRUE(isAcyclic(fn, region));
}

TEST(AnalysisTest, LoopIsNotARegion)
{
    KernelBuilder b;
    b.li(5, 3);
    b.doWhileLoop(1, [&] {
        b.addi(5, 5, -1);
        b.cmpi(Opcode::CmpGtI, 1, 0, 5, 0);
    });
    IrFunction fn = b.finish();
    auto ipdom = immediatePostdominators(fn);
    // The loop block's ipdom is the exit; but the "region" between would
    // contain the back edge, which regionBlocks rejects via head check.
    for (BlockId h = 0; h < fn.numBlocks(); ++h) {
        if (fn.block(h).term.kind == TermKind::CondBr) {
            auto r = regionBlocks(fn, h, ipdom[h]);
            EXPECT_TRUE(r.empty());
        }
    }
}

TEST(IfConvertTest, FindsDiamondRegion)
{
    IrFunction fn = buildFigure3Kernel();
    auto regions = findConvertibleRegions(fn);
    ASSERT_EQ(regions.size(), 1u);
    EXPECT_EQ(regions[0].blocks.size(), 2u);
    EXPECT_GT(regions[0].fallthroughSize, 5u);
}

TEST(IfConvertTest, PredicationPreservesSemantics)
{
    IrFunction fn = buildFigure3Kernel();
    Emulator emu;
    EmuResult ref = emu.run(fn.lower());

    auto regions = findConvertibleRegions(fn);
    ASSERT_FALSE(regions.empty());
    ASSERT_TRUE(ifConvertRegion(fn, regions[0], false));

    Program p = fn.lower();
    // All branches inside the hammock are gone; only the loop remains.
    BranchCounts c = countBranches(p);
    EXPECT_EQ(c.normal, 1u);

    EmuResult got = emu.run(p);
    EXPECT_EQ(got.resultReg, ref.resultReg);
    EXPECT_EQ(got.memFingerprint, ref.memFingerprint);
    // Predicated code retires more instructions (the fetched-NOP overhead
    // of §2.2).
    EXPECT_GT(got.dynInsts, ref.dynInsts);
    EXPECT_GT(got.predFalse, 0u);
}

TEST(IfConvertTest, WishConversionKeepsBranches)
{
    IrFunction fn = buildFigure3Kernel();
    Emulator emu;
    EmuResult ref = emu.run(fn.lower());

    auto regions = findConvertibleRegions(fn);
    ASSERT_FALSE(regions.empty());
    ASSERT_TRUE(ifConvertRegion(fn, regions[0], true));

    Program p = fn.lower();
    BranchCounts c = countBranches(p);
    EXPECT_EQ(c.wishJump, 1u);
    EXPECT_EQ(c.wishJoin, 1u);
    EXPECT_EQ(c.normal, 1u); // the loop branch

    EmuResult got = emu.run(p);
    EXPECT_EQ(got.resultReg, ref.resultReg);
    EXPECT_EQ(got.memFingerprint, ref.memFingerprint);
}

TEST(IfConvertTest, OrPatternConvertsWithMaterializedGuard)
{
    // Figure 6: if (cond1 || cond2) { B } else { D }, in a loop.
    auto build = [] {
        KernelBuilder b;
        b.li(10, 0);
        b.li(4, 0);
        b.doWhileLoop(7, [&] {
            b.andi(12, 10, 7);
            b.cmpi(Opcode::CmpEqI, 1, 2, 12, 0);   // cond1
            b.ifThenElse(
                1, 2,
                [&] { // then: cond1 true -> B
                    b.addi(4, 4, 100);
                    b.muli(20, 4, 3);
                    b.add(4, 4, 20);
                    b.addi(4, 4, 7);
                    b.addi(4, 4, 1);
                    b.addi(4, 4, 2);
                },
                [&] { // else: test cond2
                    b.andi(13, 10, 5);
                    b.cmpi(Opcode::CmpEqI, 3, 5, 13, 0); // cond2
                    b.ifThenElse(
                        3, 5,
                        [&] {
                            b.addi(4, 4, 100);
                            b.muli(21, 4, 3);
                            b.add(4, 4, 21);
                            b.addi(4, 4, 7);
                            b.addi(4, 4, 1);
                            b.addi(4, 4, 2);
                        },
                        [&] {
                            b.addi(4, 4, -50);
                            b.muli(22, 4, 2);
                            b.add(4, 4, 22);
                            b.addi(4, 4, 3);
                            b.addi(4, 4, 5);
                            b.addi(4, 4, 8);
                        });
                });
            b.addi(10, 10, 1);
            b.cmpi(Opcode::CmpLtI, 7, 0, 10, 40);
        });
        return b.finish();
    };

    IrFunction normal = build();
    Emulator emu;
    EmuResult ref = emu.run(normal.lower());

    // Convert everything (BASE-MAX style), inner first.
    IrFunction fn = build();
    unsigned conversions = 0;
    while (true) {
        auto regions = findConvertibleRegions(fn);
        if (regions.empty())
            break;
        ASSERT_TRUE(ifConvertRegion(fn, regions[0], false));
        simplifyChains(fn);
        ++conversions;
    }
    EXPECT_GE(conversions, 2u);

    EmuResult got = emu.run(fn.lower());
    EXPECT_EQ(got.resultReg, ref.resultReg);
    EXPECT_EQ(got.memFingerprint, ref.memFingerprint);
}

TEST(WishLoopTest, DoWhileConversion)
{
    auto build = [] {
        KernelBuilder b;
        b.li(4, 0);
        b.li(10, 1);
        b.doWhileLoop(1, [&] {
            b.add(4, 4, 10);
            b.addi(10, 10, 1);
            b.cmpi(Opcode::CmpLeI, 1, 0, 10, 10);
        });
        return b.finish();
    };

    IrFunction normal = build();
    Emulator emu;
    EmuResult ref = emu.run(normal.lower());
    EXPECT_EQ(ref.resultReg, 55);

    IrFunction fn = build();
    auto loops = findWishLoops(fn);
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(loops[0].shape, LoopInfo::Shape::DoWhile);
    ASSERT_TRUE(convertWishLoop(fn, loops[0]));

    Program p = fn.lower();
    BranchCounts c = countBranches(p);
    EXPECT_EQ(c.wishLoop, 1u);

    EmuResult got = emu.run(p);
    EXPECT_EQ(got.resultReg, 55);
    // Figure 4b: the preheader gained the predicate initialization.
    EXPECT_EQ(got.dynInsts, ref.dynInsts + 1);
}

TEST(WishLoopTest, WhileRotation)
{
    auto build = [](int n) {
        KernelBuilder b;
        b.li(4, 0);
        b.li(10, 0);
        b.li(11, n);
        b.whileLoop(
            [&] { b.cmp(Opcode::CmpLt, 1, 2, 10, 11); }, 1, 2,
            [&] {
                b.add(4, 4, 10);
                b.addi(10, 10, 1);
            });
        b.addi(4, 4, 1000);
        return b.finish();
    };

    for (int n : {0, 1, 5}) {
        IrFunction normal = build(n);
        Emulator emu;
        EmuResult ref = emu.run(normal.lower());

        IrFunction fn = build(n);
        auto loops = findWishLoops(fn);
        ASSERT_EQ(loops.size(), 1u) << "n=" << n;
        EXPECT_EQ(loops[0].shape, LoopInfo::Shape::While);
        ASSERT_TRUE(convertWishLoop(fn, loops[0]));

        Program p = fn.lower();
        EXPECT_EQ(countBranches(p).wishLoop, 1u);
        EmuResult got = emu.run(p);
        EXPECT_EQ(got.resultReg, ref.resultReg) << "n=" << n;
    }
}

TEST(WishLoopTest, BodyTooBigRejected)
{
    KernelBuilder b;
    b.li(4, 0);
    b.li(10, 1);
    b.doWhileLoop(1, [&] {
        for (int i = 0; i < 40; ++i)
            b.addi(4, 4, 1);
        b.addi(10, 10, 1);
        b.cmpi(Opcode::CmpLeI, 1, 0, 10, 10);
    });
    IrFunction fn = b.finish();
    EXPECT_TRUE(findWishLoops(fn, 30).empty());
    EXPECT_EQ(findWishLoops(fn, 100).size(), 1u);
}

TEST(CostTest, SequenceCyclesRespectsDependences)
{
    // Three dependent adds: height 3.
    std::vector<Instruction> chain;
    for (int i = 0; i < 3; ++i) {
        Instruction a;
        a.op = Opcode::Add;
        a.rd = 5;
        a.rs1 = 5;
        a.rs2 = 5;
        chain.push_back(a);
    }
    EXPECT_DOUBLE_EQ(estimateSequenceCycles(chain), 3.0);

    // Three independent adds: resource bound 3/8.
    std::vector<Instruction> indep;
    for (int i = 0; i < 3; ++i) {
        Instruction a;
        a.op = Opcode::Add;
        a.rd = static_cast<RegIdx>(5 + i);
        a.rs1 = 20;
        a.rs2 = 21;
        indep.push_back(a);
    }
    EXPECT_DOUBLE_EQ(estimateSequenceCycles(indep), 1.0);
}

TEST(CostTest, HardToPredictBranchFavorsPredication)
{
    IrFunction fn = buildFigure3Kernel();
    auto regions = findConvertibleRegions(fn);
    ASSERT_EQ(regions.size(), 1u);

    BranchStats hard;
    hard.takenProb.assign(fn.numBlocks(), 0.5);
    hard.mispredictRate.assign(fn.numBlocks(), 0.5);
    EXPECT_TRUE(predicationProfitable(fn, regions[0].head,
                                      regions[0].join, regions[0].blocks,
                                      hard));

    BranchStats easy;
    easy.takenProb.assign(fn.numBlocks(), 1.0);
    easy.mispredictRate.assign(fn.numBlocks(), 0.0);
    EXPECT_FALSE(predicationProfitable(fn, regions[0].head,
                                       regions[0].join, regions[0].blocks,
                                       easy));
}

TEST(DriverTest, AllVariantsEquivalent)
{
    IrFunction fn = buildFigure3Kernel();
    auto variants = compileAllVariants(fn);
    EXPECT_EQ(verifyVariantEquivalence(variants), 5u);
}

TEST(DriverTest, VariantShapesMatchTable3)
{
    // Add a small wish-loop-eligible loop after the hammock kernel.
    KernelBuilder b;
    b.li(10, 0);
    b.li(4, 0);
    b.doWhileLoop(5, [&] {
        b.andi(12, 10, 3);
        b.cmpi(Opcode::CmpEqI, 1, 2, 12, 0);
        b.ifThenElse(
            1, 2,
            [&] {
                b.li(13, 0);
                b.addi(13, 13, 7);
                b.muli(20, 13, 3);
                b.add(13, 13, 20);
                b.addi(13, 13, -1);
                b.addi(13, 13, 2);
            },
            [&] {
                b.li(13, 1);
                b.addi(13, 13, 9);
                b.muli(21, 13, 2);
                b.add(13, 13, 21);
                b.addi(13, 13, 4);
                b.addi(13, 13, 3);
            });
        b.add(4, 4, 13);
        b.addi(10, 10, 1);
        b.cmp(Opcode::CmpLt, 5, 0, 10, 11);
    });
    IrFunction fn = b.finish();

    auto variants = compileAllVariants(fn);

    // normal: no wish branches, hammock branches intact.
    BranchCounts n = countBranches(
        variants.at(BinaryVariant::Normal).program);
    EXPECT_EQ(n.wishJump + n.wishJoin + n.wishLoop, 0u);
    EXPECT_GE(n.normal, 2u);

    // BASE-MAX: hammock gone.
    BranchCounts m = countBranches(
        variants.at(BinaryVariant::BaseMax).program);
    EXPECT_EQ(m.normal, 1u); // loop branch only
    EXPECT_EQ(m.wishJump, 0u);

    // wish jump/join: hammock kept as wish jump + join, loop normal.
    BranchCounts wjj = countBranches(
        variants.at(BinaryVariant::WishJumpJoin).program);
    EXPECT_EQ(wjj.wishJump, 1u);
    EXPECT_GE(wjj.wishJoin, 1u);
    EXPECT_EQ(wjj.wishLoop, 0u);
    EXPECT_EQ(wjj.normal, 1u);

    // wish jump/join/loop: the loop body contains wish branches, so it
    // must NOT become a wish loop (no nesting).
    BranchCounts wjjl = countBranches(
        variants.at(BinaryVariant::WishJumpJoinLoop).program);
    EXPECT_EQ(wjjl.wishJump, 1u);
    EXPECT_EQ(wjjl.wishLoop, 0u);

    EXPECT_EQ(verifyVariantEquivalence(variants), 5u);
}

TEST(DriverTest, WishLoopGeneratedForSimpleLoop)
{
    KernelBuilder b;
    b.li(4, 0);
    b.li(10, 1);
    b.doWhileLoop(1, [&] {
        b.add(4, 4, 10);
        b.addi(10, 10, 1);
        b.cmpi(Opcode::CmpLeI, 1, 0, 10, 100);
    });
    IrFunction fn = b.finish();

    auto variants = compileAllVariants(fn);
    BranchCounts wjjl = countBranches(
        variants.at(BinaryVariant::WishJumpJoinLoop).program);
    EXPECT_EQ(wjjl.wishLoop, 1u);
    BranchCounts wjj = countBranches(
        variants.at(BinaryVariant::WishJumpJoin).program);
    EXPECT_EQ(wjj.wishLoop, 0u);
    EXPECT_EQ(verifyVariantEquivalence(variants), 5u);
}

TEST(DriverTest, SmallHammockPredicatedNotWished)
{
    // Fall-through arm of 2 insts (< N=5): the wish binaries predicate it.
    KernelBuilder b;
    b.li(10, 0);
    b.li(4, 0);
    b.doWhileLoop(5, [&] {
        b.andi(12, 10, 3);
        b.cmpi(Opcode::CmpEqI, 1, 2, 12, 0);
        b.ifThen(1, 2, [&] {
            b.addi(4, 4, 3);
            b.addi(4, 4, 4);
        });
        b.addi(10, 10, 1);
        b.cmpi(Opcode::CmpLtI, 5, 0, 10, 30);
    });
    IrFunction fn = b.finish();

    auto variants = compileAllVariants(fn);
    BranchCounts wjj = countBranches(
        variants.at(BinaryVariant::WishJumpJoin).program);
    EXPECT_EQ(wjj.wishJump, 0u);
    EXPECT_EQ(verifyVariantEquivalence(variants), 5u);
}

TEST(DriverTest, ProfileAwareHeuristicSkipsEasyBranches)
{
    // A branch that is ~always taken: SizeOnly wish-converts it,
    // ProfileAware leaves it as a normal branch.
    KernelBuilder b;
    b.li(10, 0);
    b.li(4, 0);
    b.doWhileLoop(5, [&] {
        b.cmpi(Opcode::CmpGeI, 1, 2, 10, 1000000); // almost never true
        b.ifThenElse(
            1, 2,
            [&] {
                for (int i = 0; i < 7; ++i)
                    b.addi(4, 4, 1);
            },
            [&] {
                for (int i = 0; i < 7; ++i)
                    b.addi(4, 4, 2);
            });
        b.addi(10, 10, 1);
        b.cmpi(Opcode::CmpLtI, 5, 0, 10, 200);
    });
    IrFunction fn = b.finish();

    BranchStats stats = profileFunction(fn);
    CompileOptions sizeOnly;
    CompileOptions profAware;
    profAware.wishHeuristic = WishHeuristic::ProfileAware;

    CompiledBinary s =
        compileVariant(fn, BinaryVariant::WishJumpJoin, stats, sizeOnly);
    CompiledBinary p =
        compileVariant(fn, BinaryVariant::WishJumpJoin, stats, profAware);
    EXPECT_GT(s.staticWishJumps, 0u);
    EXPECT_EQ(p.staticWishJumps, 0u)
        << "profile-aware: the easy branch stays a normal branch";
    EXPECT_GT(p.staticCondBranches, 1u);
}

TEST(DriverTest, ProfileFeedsBaseDef)
{
    // A branch that is ~always taken: BASE-DEF must leave it alone while
    // BASE-MAX predicates it.
    KernelBuilder b;
    b.li(10, 0);
    b.li(4, 0);
    b.doWhileLoop(5, [&] {
        b.cmpi(Opcode::CmpGeI, 1, 2, 10, 1000000); // almost never true
        b.ifThen(1, 2, [&] {
            for (int i = 0; i < 8; ++i)
                b.addi(4, 4, 1);
        });
        b.addi(10, 10, 1);
        b.cmpi(Opcode::CmpLtI, 5, 0, 10, 200);
    });
    IrFunction fn = b.finish();

    auto variants = compileAllVariants(fn);
    BranchCounts def = countBranches(
        variants.at(BinaryVariant::BaseDef).program);
    BranchCounts max = countBranches(
        variants.at(BinaryVariant::BaseMax).program);
    EXPECT_EQ(def.normal, 2u) << "BASE-DEF keeps the predictable branch";
    EXPECT_EQ(max.normal, 1u) << "BASE-MAX predicates it";
}

} // namespace
} // namespace wisc
