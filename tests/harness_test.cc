/**
 * @file
 * Tests for the experiment harness: the runner captures statistics, the
 * normalized-experiment scaffolding computes AVG/AVGnomcf the way the
 * paper does (§2.2 footnote 2), and results are reproducible.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiments.hh"
#include "harness/runner.hh"

namespace wisc {
namespace {

TEST(RunnerTest, CapturesStatsSnapshot)
{
    CompiledWorkload w = compileWorkload("crafty");
    RunOutcome r = run(RunRequest{w, BinaryVariant::Normal, InputSet::A});
    EXPECT_TRUE(r.result.halted);
    EXPECT_GT(r.stat("core.cycles"), 0u);
    EXPECT_GT(r.stat("core.retired_uops"), 0u);
    EXPECT_EQ(r.stat("core.cycles"), r.result.cycles);
    EXPECT_GT(r.mispredictsPer1K(), 0.0);
}

TEST(RunnerTest, CapturesHistogramSnapshot)
{
    CompiledWorkload w = compileWorkload("crafty");
    RunOutcome r = run(RunRequest{w, BinaryVariant::Normal, InputSet::A});
    // The core always registers these histograms; losing them in
    // capture() was a real stat-export bug.
    ASSERT_TRUE(r.hists.count("core.fetch_width"));
    ASSERT_TRUE(r.hists.count("core.flush_squash"));

    const HistogramSnapshot &h = r.hists.at("core.fetch_width");
    EXPECT_GT(h.count, 0u);
    std::uint64_t sum = 0;
    for (std::uint64_t b : h.buckets)
        sum += b;
    EXPECT_EQ(sum, h.count);
    // One sample per fetching cycle, so bounded by total cycles.
    EXPECT_LE(h.count, r.result.cycles);

    const HistogramSnapshot &f = r.hists.at("core.flush_squash");
    EXPECT_EQ(f.count, r.require("core.flushes"));
}

TEST(RunnerTest, RequirePanicsOnUnknownStat)
{
    CompiledWorkload w = compileWorkload("crafty");
    RunOutcome r = run(RunRequest{w, BinaryVariant::Normal, InputSet::A});
    EXPECT_EQ(r.require("core.cycles"), r.result.cycles);
    EXPECT_THROW(r.require("core.cycels"), FatalError);
    // stat() stays tolerant for registration-on-first-event names.
    EXPECT_EQ(r.stat("wish.never.registered"), 0u);
}

TEST(RunnerTest, RunsAreReproducible)
{
    CompiledWorkload w = compileWorkload("crafty");
    RunOutcome a = run(
        RunRequest{w, BinaryVariant::WishJumpJoinLoop, InputSet::A});
    RunOutcome b = run(
        RunRequest{w, BinaryVariant::WishJumpJoinLoop, InputSet::A});
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.stat("core.flushes"), b.stat("core.flushes"));
}

TEST(ExperimentTest, NormalizedAveragesExcludeMcf)
{
    std::vector<SeriesSpec> series = {
        {"normal-again", BinaryVariant::Normal, SimParams{}},
    };
    // Two benchmarks, one of them mcf: AVG covers both, AVGnomcf one.
    NormalizedResults r = runNormalizedExperiment(
        series, InputSet::A, SimParams{}, {"crafty", "mcf"});
    ASSERT_EQ(r.relTime.size(), 2u);
    // The normal binary normalized to itself is exactly 1.
    EXPECT_DOUBLE_EQ(r.relTime[0][0], 1.0);
    EXPECT_DOUBLE_EQ(r.relTime[1][0], 1.0);
    EXPECT_DOUBLE_EQ(r.avg[0], 1.0);
    EXPECT_DOUBLE_EQ(r.avgNoMcf[0], 1.0);
}

TEST(ExperimentTest, PrintsPaperStyleTable)
{
    NormalizedResults r;
    r.benchmarks = {"x"};
    r.seriesLabels = {"s1", "s2"};
    r.relTime = {{0.5, 1.25}};
    r.avg = {0.5, 1.25};
    r.avgNoMcf = {0.5, 1.25};
    std::ostringstream os;
    printNormalized(os, r);
    std::string out = os.str();
    EXPECT_NE(out.find("AVG"), std::string::npos);
    EXPECT_NE(out.find("AVGnomcf"), std::string::npos);
    EXPECT_NE(out.find("0.500"), std::string::npos);
    EXPECT_NE(out.find("1.250"), std::string::npos);
}

} // namespace
} // namespace wisc
