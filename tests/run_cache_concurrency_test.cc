/**
 * @file
 * Concurrency hammer for RunService (part of the tsan-labeled
 * wisc_parallel_tests binary): many threads issuing duplicate requests
 * must coalesce onto single executions, agree bit-for-bit on the
 * outcome, and leave consistent counters — under ThreadSanitizer when
 * configured with -DWISC_SANITIZE=thread.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "harness/run_cache.hh"
#include "harness/runner.hh"
#include "workloads/workload.hh"

namespace wisc {
namespace {

namespace fs = std::filesystem;

TEST(RunServiceConcurrencyTest, DuplicateRequestsCoalesceAcrossThreads)
{
    RunService svc;
    svc.setMemoize(true);

    // A handful of distinct requests, each hammered by many threads.
    CompiledWorkload w = compileWorkload("gzip");
    const std::vector<Program> progs = {
        programFor(w, BinaryVariant::Normal, InputSet::A),
        programFor(w, BinaryVariant::WishJumpJoin, InputSet::A),
        programFor(w, BinaryVariant::Normal, InputSet::C),
    };

    constexpr unsigned kThreadsPerProg = 6;
    const std::size_t nReq = progs.size() * kThreadsPerProg;
    std::vector<RunOutcome> outcomes(nReq);
    std::atomic<unsigned> ready{0};

    std::vector<std::thread> threads;
    threads.reserve(nReq);
    for (std::size_t i = 0; i < nReq; ++i) {
        threads.emplace_back([&, i] {
            // Crude start barrier so requests genuinely overlap.
            ready.fetch_add(1);
            while (ready.load() < nReq)
                std::this_thread::yield();
            outcomes[i] = svc.run(progs[i % progs.size()], SimParams{});
        });
    }
    for (std::thread &t : threads)
        t.join();

    // Each distinct program simulated exactly once; everyone else
    // coalesced or replayed from the memo.
    RunCacheStats s = svc.stats();
    EXPECT_EQ(s.misses, progs.size());
    EXPECT_EQ(s.dedupHits, nReq - progs.size());
    EXPECT_EQ(s.diskHits, 0u);

    // All waiters on one key observed the identical outcome.
    for (std::size_t i = progs.size(); i < nReq; ++i) {
        const RunOutcome &a = outcomes[i % progs.size()];
        const RunOutcome &b = outcomes[i];
        EXPECT_EQ(a.result.cycles, b.result.cycles);
        EXPECT_EQ(a.result.resultReg, b.result.resultReg);
        EXPECT_EQ(a.result.memFingerprint, b.result.memFingerprint);
        EXPECT_EQ(a.stats, b.stats);
    }
}

TEST(RunServiceConcurrencyTest, ConcurrentWritersShareOneDiskStore)
{
    const fs::path dir =
        fs::temp_directory_path() /
        ("wisc_cache_conc_" + std::to_string(::getpid()));
    fs::create_directories(dir);

    CompiledWorkload w = compileWorkload("bzip2");
    Program prog = programFor(w, BinaryVariant::Normal, InputSet::A);

    {
        RunService svc(dir.string());
        constexpr unsigned kThreads = 8;
        std::vector<std::thread> threads;
        for (unsigned i = 0; i < kThreads; ++i)
            threads.emplace_back(
                [&] { svc.run(prog, SimParams{}); });
        for (std::thread &t : threads)
            t.join();
        RunCacheStats s = svc.stats();
        EXPECT_EQ(s.misses, 1u);
        EXPECT_EQ(s.dedupHits, kThreads - 1);
        EXPECT_EQ(s.diskWrites, 1u);
    }

    // A second service (fresh process stand-in) replays from disk even
    // when hammered concurrently: one disk hit, the rest coalesce.
    {
        RunService svc(dir.string());
        constexpr unsigned kThreads = 8;
        std::vector<std::thread> threads;
        for (unsigned i = 0; i < kThreads; ++i)
            threads.emplace_back(
                [&] { svc.run(prog, SimParams{}); });
        for (std::thread &t : threads)
            t.join();
        RunCacheStats s = svc.stats();
        EXPECT_EQ(s.diskHits, 1u);
        EXPECT_EQ(s.misses, 0u);
        EXPECT_EQ(s.dedupHits, kThreads - 1);
    }

    std::error_code ec;
    fs::remove_all(dir, ec);
}

} // namespace
} // namespace wisc
