/**
 * @file
 * Unit tests for the statistics package and the table formatting used
 * by the experiment harness.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"
#include "harness/table.hh"

namespace wisc {
namespace {

TEST(StatsTest, CounterBasics)
{
    StatSet s;
    Counter &c = s.counter("a.b", "a counter");
    ++c;
    c += 5;
    EXPECT_EQ(s.get("a.b"), 6u);
    EXPECT_TRUE(s.has("a.b"));
    EXPECT_FALSE(s.has("nope"));
    EXPECT_EQ(s.get("nope"), 0u);
}

TEST(StatsTest, CounterIsStableAcrossRegistrations)
{
    StatSet s;
    Counter &c1 = s.counter("x");
    ++c1;
    Counter &c2 = s.counter("x");
    EXPECT_EQ(&c1, &c2);
    EXPECT_EQ(c2.value(), 1u);
}

TEST(StatsTest, ResetAll)
{
    StatSet s;
    s.counter("x") += 10;
    s.histogram("h", 4).sample(2);
    s.resetAll();
    EXPECT_EQ(s.get("x"), 0u);
    EXPECT_EQ(s.histogram("h", 4).count(), 0u);
}

TEST(StatsTest, RequireIsCheckedLookup)
{
    StatSet s;
    s.counter("core.cycles") += 42;
    EXPECT_EQ(s.require<Counter>("core.cycles").value(), 42u);
    // A misspelled name is a hard error, never a plausible zero.
    EXPECT_THROW(s.require<Counter>("core.cycels"), FatalError);
}

TEST(StatsTest, RequireNamesTheActualKindOnMismatch)
{
    StatSet s;
    s.counter("c");
    s.histogram("h", 4);
    s.table("t", {"a", "b"});
    // Reading a statistic with the wrong kind is a typed error that
    // names what the statistic actually is.
    EXPECT_THROW(s.require<Histogram>("c"), FatalError);
    EXPECT_THROW(s.require<Counter>("h"), FatalError);
    EXPECT_THROW(s.require<Counter>("t"), FatalError);
    EXPECT_THROW(s.require<StatTable>("h"), FatalError);
    try {
        s.require<Counter>("h");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("histogram"), std::string::npos) << msg;
        EXPECT_NE(msg.find("counter"), std::string::npos) << msg;
    }
}

TEST(StatsTest, CrossKindRegistrationIsRejected)
{
    StatSet s;
    s.counter("x");
    EXPECT_THROW(s.histogram("x", 4), FatalError);
    EXPECT_THROW(s.table("x", {"a"}), FatalError);
}

TEST(StatsTest, ZeroBucketHistogramIsRejected)
{
    StatSet s;
    EXPECT_THROW(s.histogram("h", 0), FatalError);
    EXPECT_THROW(Histogram(0), FatalError);
}

TEST(StatsTest, UnconfiguredHistogramSamplePanics)
{
    Histogram h; // container-placeholder state, no geometry
    EXPECT_DEATH(h.sample(1), "unconfigured histogram");
}

TEST(StatsTest, RequireHistogramIsCheckedLookup)
{
    StatSet s;
    s.histogram("h", 4).sample(2);
    EXPECT_EQ(s.require<Histogram>("h").count(), 1u);
    EXPECT_THROW(s.require<Histogram>("nope"), FatalError);
    auto names = s.histogramNames();
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "h");
}

TEST(StatsTest, TableBasics)
{
    StatSet s;
    StatTable &t = s.table("bp", {"count", "mispred"}, "per-PC profile");
    t.row(0x40)[0] += 3;
    t.row(0x40)[1] += 1;
    t.row(0x80)[0] += 7;
    EXPECT_EQ(t.numRows(), 2u);
    ASSERT_EQ(t.columns().size(), 2u);
    EXPECT_EQ(t.columns()[1], "mispred");
    EXPECT_EQ(t.rows().at(0x40)[0], 3u);
    EXPECT_EQ(t.rows().at(0x40)[1], 1u);
    EXPECT_EQ(t.rows().at(0x80)[0], 7u);
    EXPECT_EQ(t.rows().at(0x80)[1], 0u) << "rows start zero-filled";

    // Registration is idempotent and stable, like counters.
    EXPECT_EQ(&s.table("bp", {"count", "mispred"}), &t);
    EXPECT_EQ(s.require<StatTable>("bp").numRows(), 2u);
    auto names = s.tableNames();
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "bp");
}

TEST(StatsTest, ZeroColumnTableIsRejected)
{
    StatSet s;
    EXPECT_THROW(s.table("t", {}), FatalError);
}

TEST(StatsTest, TableResetsWithTheSet)
{
    StatSet s;
    StatTable &t = s.table("t", {"v"});
    t.row(1)[0] = 9;
    s.resetAll();
    EXPECT_EQ(s.require<StatTable>("t").numRows(), 0u);
}

TEST(StatsTest, HistogramBucketsAndOverflow)
{
    StatSet s;
    Histogram &h = s.histogram("h", 4);
    h.sample(0);
    h.sample(3);
    h.sample(3);
    h.sample(99); // overflow bucket
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.bucket(4), 1u);
}

TEST(StatsTest, DumpContainsNamesAndValues)
{
    StatSet s;
    s.counter("core.cycles", "cycles") += 42;
    std::ostringstream os;
    s.dump(os);
    EXPECT_NE(os.str().find("core.cycles"), std::string::npos);
    EXPECT_NE(os.str().find("42"), std::string::npos);
}

TEST(StatsTest, CounterNamesSorted)
{
    StatSet s;
    s.counter("b");
    s.counter("a");
    auto names = s.counterNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
}

TEST(TableTest, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longername", "2.345"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("longername"), std::string::npos);
    EXPECT_NE(out.find("value"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(1.23456, 3), "1.235");
    EXPECT_EQ(Table::num(2.0, 1), "2.0");
    EXPECT_EQ(Table::num(-0.5, 2), "-0.50");
}

} // namespace
} // namespace wisc
