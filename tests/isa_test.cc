/**
 * @file
 * Unit tests for the WISC ISA definition, encoding metadata (Figure 7),
 * the assembler, and Program validation.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "isa/assembler.hh"
#include "isa/isa.hh"
#include "isa/program.hh"

namespace wisc {
namespace {

TEST(IsaTest, OpcodeMetadataConsistency)
{
    for (unsigned i = 0; i < static_cast<unsigned>(Opcode::NumOpcodes);
         ++i) {
        Instruction inst;
        inst.op = static_cast<Opcode>(i);
        // Every opcode has a printable name.
        EXPECT_NE(opcodeName(inst.op), nullptr);
        EXPECT_GT(std::string(opcodeName(inst.op)).size(), 0u);
        // An instruction never both writes a register and a predicate.
        EXPECT_FALSE(inst.writesReg() && inst.writesPred())
            << opcodeName(inst.op);
    }
}

TEST(IsaTest, BranchPredicates)
{
    Instruction br;
    br.op = Opcode::Br;
    EXPECT_TRUE(br.isBranch());
    EXPECT_TRUE(br.isControl());
    EXPECT_FALSE(br.isWish());

    br.wish = WishKind::Jump;
    EXPECT_TRUE(br.isWish());

    Instruction jmp;
    jmp.op = Opcode::Jmp;
    EXPECT_FALSE(jmp.isBranch());
    EXPECT_TRUE(jmp.isControl());

    Instruction ret;
    ret.op = Opcode::Ret;
    EXPECT_TRUE(ret.isIndirect());
}

TEST(IsaTest, WishKindEncodingPerFigure7)
{
    // Figure 7: btype distinguishes normal vs wish; wtype has three
    // values. WishKind::None plays the role of btype=0.
    EXPECT_STREQ(wishKindName(WishKind::None), "");
    EXPECT_STREQ(wishKindName(WishKind::Jump), "wish.jump");
    EXPECT_STREQ(wishKindName(WishKind::Join), "wish.join");
    EXPECT_STREQ(wishKindName(WishKind::Loop), "wish.loop");
}

TEST(IsaTest, AddrConversionRoundTrip)
{
    for (std::uint64_t idx : {0ull, 1ull, 1000ull, 123456ull}) {
        EXPECT_EQ(addrToIndex(instAddr(idx)), idx);
    }
    EXPECT_EQ(instAddr(0), kTextBase);
    EXPECT_EQ(instAddr(1), kTextBase + kInstBytes);
}

TEST(IsaTest, InstrClassMapping)
{
    Instruction i;
    i.op = Opcode::Ld;
    EXPECT_EQ(i.instrClass(), InstrClass::Load);
    i.op = Opcode::St1;
    EXPECT_EQ(i.instrClass(), InstrClass::Store);
    i.op = Opcode::Mul;
    EXPECT_EQ(i.instrClass(), InstrClass::IntMul);
    i.op = Opcode::Div;
    EXPECT_EQ(i.instrClass(), InstrClass::IntDiv);
    i.op = Opcode::Br;
    EXPECT_EQ(i.instrClass(), InstrClass::Branch);
    i.op = Opcode::AddI;
    EXPECT_EQ(i.instrClass(), InstrClass::IntAlu);
}

TEST(AssemblerTest, SimpleProgram)
{
    Program p = assemble(R"(
        ; compute 6*7 into r4
        li r5, 6
        li r6, 7
        mul r4, r5, r6
        halt
    )");
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p.at(2).op, Opcode::Mul);
    EXPECT_EQ(p.at(3).op, Opcode::Halt);
}

TEST(AssemblerTest, LabelsAndBranches)
{
    Program p = assemble(R"(
        li r5, 10
        loop:
        addi r5, r5, -1
        cmpi.gt p1, p0, r5, 0
        br p1, loop
        halt
    )");
    EXPECT_EQ(p.label("loop"), 1u);
    const Instruction &br = p.at(3);
    EXPECT_EQ(br.op, Opcode::Br);
    EXPECT_EQ(br.qp, 1);
    EXPECT_EQ(br.target, 1u);
}

TEST(AssemblerTest, WishBranchSugar)
{
    Program p = assemble(R"(
        entry:
        cmpi.lt p1, p2, r5, 3
        wish.jump p1, tgt
        (p2) addi r6, r6, 1
        wish.join p2, done
        tgt:
        (p1) addi r6, r6, 2
        done:
        halt
    )");
    EXPECT_EQ(p.at(1).wish, WishKind::Jump);
    EXPECT_EQ(p.at(1).qp, 1);
    EXPECT_EQ(p.at(3).wish, WishKind::Join);
    EXPECT_EQ(p.at(3).target, p.label("done"));
}

TEST(AssemblerTest, GuardPrefix)
{
    Program p = assemble(R"(
        (p3) add r1, r2, r3
        halt
    )");
    EXPECT_EQ(p.at(0).qp, 3);
}

TEST(AssemblerTest, DataDirective)
{
    Program p = assemble(R"(
        .data 0x20000 10 20 -30
        halt
    )");
    ASSERT_EQ(p.data().size(), 1u);
    EXPECT_EQ(p.data()[0].base, 0x20000u);
    ASSERT_EQ(p.data()[0].words.size(), 3u);
    EXPECT_EQ(p.data()[0].words[2], -30);
}

TEST(AssemblerTest, EntryDirective)
{
    Program p = assemble(R"(
        .entry start
        halt
        start:
        li r4, 1
        halt
    )");
    EXPECT_EQ(p.entry(), 1u);
}

TEST(AssemblerTest, ErrorsAreFatal)
{
    EXPECT_THROW(assemble("bogus r1, r2"), FatalError);
    EXPECT_THROW(assemble("br p1, nowhere\nhalt"), FatalError);
    EXPECT_THROW(assemble("add r1, r2\nhalt"), FatalError);
    EXPECT_THROW(assemble("li r99, 1\nhalt"), FatalError);
    EXPECT_THROW(assemble("li r1, 1"), FatalError) << "no halt";
    EXPECT_THROW(assemble("x: halt\nx: halt"), FatalError) << "dup label";
}

TEST(ProgramTest, ValidateRejectsBadTargets)
{
    Program p;
    Instruction br;
    br.op = Opcode::Br;
    br.qp = 1;
    br.target = 99;
    p.append(br);
    Instruction halt;
    halt.op = Opcode::Halt;
    p.append(halt);
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(ProgramTest, ValidateRejectsWishOnNonBranch)
{
    Program p;
    Instruction add;
    add.op = Opcode::Add;
    add.wish = WishKind::Loop;
    p.append(add);
    Instruction halt;
    halt.op = Opcode::Halt;
    p.append(halt);
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(ProgramTest, DisassembleRoundTripSpotChecks)
{
    // The assembler does not parse "unc."; build the instruction manually.
    Instruction i;
    i.op = Opcode::CmpLt;
    i.qp = 1;
    i.pd = 2;
    i.pd2 = 3;
    i.rs1 = 5;
    i.rs2 = 6;
    i.unc = true;
    std::string d = disassemble(i);
    EXPECT_NE(d.find("unc."), std::string::npos);
    EXPECT_NE(d.find("(p1)"), std::string::npos);
}

TEST(ProgramTest, ListingShowsLabels)
{
    Program p = assemble(R"(
        start:
        li r4, 42
        halt
    )");
    std::string l = p.listing();
    EXPECT_NE(l.find("start:"), std::string::npos);
    EXPECT_NE(l.find("li r4, 42"), std::string::npos);
}

} // namespace
} // namespace wisc
