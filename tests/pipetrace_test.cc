/**
 * @file
 * Tests for the pipeline tracer: lifecycle ordering invariants on
 * retired µops, squash marking of wrong-path µops, first-N capture
 * policy, and the text rendering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "isa/assembler.hh"
#include "uarch/core.hh"
#include "uarch/pipetrace.hh"

namespace wisc {
namespace {

TEST(PipeTraceTest, LifecycleOrderingOnStraightLine)
{
    Program p = assemble(R"(
        li r5, 1
        addi r5, r5, 2
        mul r4, r5, r5
        halt
    )");
    SimParams params;
    StatSet stats;
    PipeTracer tracer(64);
    Core core(params, stats);
    core.addSink(&tracer);
    SimResult r = core.run(p);
    ASSERT_TRUE(r.halted);

    ASSERT_EQ(tracer.records().size(), 4u);
    for (const PipeRecord &rec : tracer.records()) {
        EXPECT_FALSE(rec.squashed) << rec.disasm;
        EXPECT_LE(rec.fetch, rec.rename) << rec.disasm;
        EXPECT_LE(rec.rename, rec.issue) << rec.disasm;
        EXPECT_LE(rec.issue, rec.complete) << rec.disasm;
        EXPECT_LE(rec.complete, rec.retire) << rec.disasm;
        EXPECT_NE(rec.retire, kNoCycle) << rec.disasm;
    }
    // Front-end depth separates fetch from rename.
    EXPECT_GE(tracer.records()[0].rename - tracer.records()[0].fetch,
              params.frontEndDelay());
}

TEST(PipeTraceTest, WrongPathMarkedSquashed)
{
    // A hard-to-predict branch guarantees wrong-path fetches.
    Program p = assemble(R"(
        li r5, 0
        li r6, 31337
        loop:
        muli r6, r6, 1103515245
        addi r6, r6, 12345
        shri r7, r6, 16
        andi r7, r7, 1
        cmpi.eq p1, p2, r7, 1
        br p1, skip
        addi r4, r4, 1
        skip:
        addi r5, r5, 1
        cmpi.lt p3, p0, r5, 200
        br p3, loop
        halt
    )");
    SimParams params;
    StatSet stats;
    PipeTracer tracer(2048);
    Core core(params, stats);
    core.addSink(&tracer);
    SimResult r = core.run(p);
    ASSERT_TRUE(r.halted);

    unsigned squashed = 0, retired = 0;
    for (const PipeRecord &rec : tracer.records()) {
        if (rec.squashed) {
            ++squashed;
            EXPECT_EQ(rec.retire, kNoCycle)
                << "squashed µops never retire";
        }
        if (rec.retire != kNoCycle)
            ++retired;
    }
    EXPECT_GT(squashed, 50u) << "mispredictions must squash µops";
    EXPECT_GT(retired, 150u);
}

TEST(PipeTraceTest, PredicatedNopsFlagged)
{
    Program p = assemble(R"(
        pset p1, 0
        (p1) addi r4, r4, 1
        halt
    )");
    SimParams params;
    StatSet stats;
    PipeTracer tracer(8);
    Core core(params, stats);
    core.addSink(&tracer);
    core.run(p);

    ASSERT_GE(tracer.records().size(), 2u);
    EXPECT_TRUE(tracer.records()[1].predFalse);
    EXPECT_FALSE(tracer.records()[0].predFalse);
}

TEST(PipeTraceTest, CapacityKeepsFirstN)
{
    Program p = assemble(R"(
        li r5, 0
        loop:
        addi r5, r5, 1
        cmpi.lt p1, p0, r5, 100
        br p1, loop
        halt
    )");
    SimParams params;
    StatSet stats;
    PipeTracer tracer(10);
    Core core(params, stats);
    core.addSink(&tracer);
    core.run(p);

    ASSERT_EQ(tracer.records().size(), 10u);
    EXPECT_EQ(tracer.records()[0].pc, 0u) << "run start captured";
}

/** Cycle 0 is a real cycle: the first µop fetches there, and the
 *  renderer must draw it. The old encoding used 0 as "never reached",
 *  which silently dropped every stage event at cycle 0 (now kNoCycle
 *  is the sentinel). */
TEST(PipeTraceTest, CycleZeroEventsAreRecordedAndRendered)
{
    Program p = assemble(R"(
        li r4, 7
        halt
    )");
    SimParams params;
    StatSet stats;
    PipeTracer tracer(8);
    Core core(params, stats);
    core.addSink(&tracer);
    core.run(p);

    ASSERT_GE(tracer.records().size(), 1u);
    EXPECT_EQ(tracer.records()[0].fetch, 0u)
        << "the first µop fetches at cycle 0";

    std::ostringstream os;
    tracer.render(os, 0, 4);
    const std::string out = os.str();
    // First data row (after the header line): uid(6) ' ' pc(5) ' '
    // then the lane, whose column 0 is cycle 0 — it must show the 'F'.
    const std::size_t row = out.find('\n') + 1;
    ASSERT_LT(row + 13, out.size());
    EXPECT_EQ(out[row + 13], 'F');
}

TEST(PipeTraceTest, RenderContainsStageLetters)
{
    Program p = assemble(R"(
        li r4, 7
        halt
    )");
    SimParams params;
    StatSet stats;
    PipeTracer tracer(8);
    Core core(params, stats);
    core.addSink(&tracer);
    core.run(p);

    std::ostringstream os;
    tracer.render(os, 0, 8);
    std::string out = os.str();
    EXPECT_NE(out.find('F'), std::string::npos);
    EXPECT_NE(out.find('W'), std::string::npos);
    EXPECT_NE(out.find("li r4, 7"), std::string::npos);
}

} // namespace
} // namespace wisc
