/**
 * @file
 * Tests for the differential fuzzing subsystem: generator determinism,
 * IR text round-trip fidelity, shrinker behavior, state diffing, the
 * non-halting hard-error paths, and a small end-to-end campaign.
 */

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arch/emulator.hh"
#include "arch/state_diff.hh"
#include "common/log.hh"
#include "compiler/driver.hh"
#include "compiler/ir_text.hh"
#include "fuzz/fuzzer.hh"
#include "fuzz/generator.hh"
#include "fuzz/shrink.hh"

namespace wisc {
namespace {

/** An IR function that never halts: entry spins on itself forever.
 *  (A halt block exists — lowering requires one — but is unreachable.) */
IrFunction
infiniteLoopFn()
{
    IrFunction fn;
    BlockId spin = fn.newBlock("spin");
    fn.newBlock("unreachable_halt"); // default terminator is Halt
    fn.block(spin).term.kind = TermKind::Jump;
    fn.block(spin).term.taken = spin;
    fn.setEntry(spin);
    return fn;
}

/** First seed in [1, limit] whose generated program satisfies pred. */
template <typename Pred>
std::uint64_t
findSeed(const Pred &pred, std::uint64_t limit = 100)
{
    for (std::uint64_t seed = 1; seed <= limit; ++seed)
        if (pred(generateProgram(seed)))
            return seed;
    return 0;
}

// ---------------------------------------------------------------- generator

TEST(FuzzGenerator, SameSeedSameProgram)
{
    for (std::uint64_t seed : {1ull, 7ull, 123456789ull}) {
        IrFunction a = generateProgram(seed);
        IrFunction b = generateProgram(seed);
        EXPECT_EQ(a.lower().fingerprint(), b.lower().fingerprint())
            << "seed " << seed;
        EXPECT_EQ(irToText(a), irToText(b)) << "seed " << seed;
    }
}

TEST(FuzzGenerator, DifferentSeedsDifferentPrograms)
{
    EXPECT_NE(generateProgram(1).lower().fingerprint(),
              generateProgram(2).lower().fingerprint());
}

TEST(FuzzGenerator, EmitsStructureAcrossSeeds)
{
    bool sawBranch = false, sawBackEdge = false, sawLoad = false,
         sawStore = false;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        IrFunction fn = generateProgram(seed);
        EXPECT_FALSE(fn.data().empty());
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            const IrBlock &blk = fn.block(b);
            if (blk.dead)
                continue;
            if (blk.term.kind == TermKind::CondBr) {
                sawBranch = true;
                if (blk.term.taken <= b || blk.term.next <= b)
                    sawBackEdge = true;
            }
            for (const Instruction &i : blk.insts) {
                if (i.op == Opcode::Ld || i.op == Opcode::Ld1)
                    sawLoad = true;
                if (i.op == Opcode::St || i.op == Opcode::St1)
                    sawStore = true;
            }
        }
    }
    EXPECT_TRUE(sawBranch);
    EXPECT_TRUE(sawBackEdge);
    EXPECT_TRUE(sawLoad);
    EXPECT_TRUE(sawStore);
}

TEST(FuzzGenerator, GeneratedProgramsHalt)
{
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        Program p = generateProgram(seed).lower();
        Emulator emu;
        EmuResult r = emu.run(p, nullptr, 2'000'000);
        EXPECT_TRUE(r.halted) << "seed " << seed;
    }
}

// ----------------------------------------------------------------- ir_text

TEST(IrText, RoundTripLowersIdentically)
{
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        IrFunction fn = generateProgram(seed);
        IrFunction re = irFromText(irToText(fn));
        EXPECT_EQ(fn.lower().fingerprint(), re.lower().fingerprint())
            << "seed " << seed;
        // Stable: a second round trip produces the same text.
        EXPECT_EQ(irToText(fn), irToText(re)) << "seed " << seed;
    }
}

TEST(IrText, RoundTripCompilesIdentically)
{
    // Block ids, entry, and maxUserPred survive, so every *variant*
    // compiles bit-identically from the reparsed function.
    IrFunction fn = generateProgram(3);
    IrFunction re = irFromText(irToText(fn));
    auto a = compileAllVariants(fn);
    auto b = compileAllVariants(re);
    ASSERT_EQ(a.size(), b.size());
    for (const auto &kv : a)
        EXPECT_EQ(kv.second.program.fingerprint(),
                  b.at(kv.first).program.fingerprint())
            << variantName(kv.first);
}

TEST(IrText, ParserRejectsGarbage)
{
    EXPECT_THROW(irFromText("not an ir file"), FatalError);
    EXPECT_THROW(irFromText("wisc-ir 99\n"), FatalError);
    EXPECT_THROW(irFromText("wisc-ir 1\nblock 0\n  i bogusop\n"),
                 FatalError);
}

TEST(IrText, CommentsAndBlankLinesIgnored)
{
    IrFunction fn = generateProgram(5);
    std::string text = "; reproducer header\n# another comment\n\n" +
                       irToText(fn);
    IrFunction re = irFromText(text);
    EXPECT_EQ(fn.lower().fingerprint(), re.lower().fingerprint());
}

// ----------------------------------------------------------------- shrinker

TEST(Shrink, PreservesFailurePredicate)
{
    auto hasStore = [](const IrFunction &f) {
        for (const IrBlock &b : f.blocks()) {
            if (b.dead)
                continue;
            for (const Instruction &i : b.insts)
                if (i.op == Opcode::St || i.op == Opcode::St1)
                    return true;
        }
        return false;
    };
    std::uint64_t seed = findSeed(hasStore);
    ASSERT_NE(seed, 0u) << "no seed in range produces a store";
    IrFunction fn = generateProgram(seed);

    ShrinkStats st;
    IrFunction min = shrinkIr(fn, hasStore, &st);
    EXPECT_TRUE(hasStore(min));
    EXPECT_GT(st.accepted, 0u);

    auto instCount = [](const IrFunction &f) {
        std::size_t n = 0;
        for (const IrBlock &b : f.blocks())
            if (!b.dead)
                n += b.insts.size();
        return n;
    };
    EXPECT_LT(instCount(min), instCount(fn));
    // A predicate this loose shrinks to (nearly) just the witness.
    EXPECT_LE(instCount(min), 3u);
}

TEST(Shrink, DeterministicForSameInput)
{
    auto pred = [](const IrFunction &f) {
        for (const IrBlock &b : f.blocks())
            if (!b.dead)
                for (const Instruction &i : b.insts)
                    if (i.op == Opcode::Mul || i.op == Opcode::MulI)
                        return true;
        return false;
    };
    std::uint64_t seed = findSeed(pred);
    ASSERT_NE(seed, 0u) << "no seed in range produces a multiply";
    IrFunction fn = generateProgram(seed);
    IrFunction a = shrinkIr(fn, pred);
    IrFunction b = shrinkIr(fn, pred);
    EXPECT_EQ(irToText(a), irToText(b));
}

TEST(Shrink, RejectsNonFailingInput)
{
    IrFunction fn = generateProgram(1);
    EXPECT_THROW(
        shrinkIr(fn, [](const IrFunction &) { return false; }),
        FatalError);
}

// --------------------------------------------------------------- state diff

TEST(StateDiff, ReportsFirstDifferingRegister)
{
    ArchState a, b;
    EXPECT_FALSE(firstStateDiff(a, b));

    b.writeReg(7, 41);
    a.writeReg(7, 42);
    b.writeReg(9, 1); // later register also differs; 7 wins
    StateDiff d = firstStateDiff(a, b);
    ASSERT_TRUE(d);
    EXPECT_EQ(d.kind, StateDiff::Kind::IntReg);
    EXPECT_EQ(d.reg, 7u);
    EXPECT_EQ(d.expected, 42u);
    EXPECT_EQ(d.got, 41u);
    EXPECT_NE(d.describe().find("r7"), std::string::npos);
}

TEST(StateDiff, ReportsDifferingMemoryWord)
{
    ArchState a, b;
    a.mem().writeWord(0x20010, 0xdead);
    b.mem().writeWord(0x20010, 0xbeef);
    StateDiff d = firstStateDiff(a, b);
    ASSERT_TRUE(d);
    EXPECT_EQ(d.kind, StateDiff::Kind::Memory);
    EXPECT_EQ(d.addr, 0x20010u);
    EXPECT_EQ(d.expected, 0xdeadu);
    EXPECT_EQ(d.got, 0xbeefu);
}

TEST(StateDiff, SeesWriteOnOneSideOnly)
{
    // The page exists only in 'got'; the diff must still find it.
    ArchState a, b;
    b.mem().writeWord(0x90000, 5);
    StateDiff d = firstStateDiff(a, b);
    ASSERT_TRUE(d);
    EXPECT_EQ(d.kind, StateDiff::Kind::Memory);
    EXPECT_EQ(d.addr, 0x90000u);
    EXPECT_EQ(d.expected, 0u);
    EXPECT_EQ(d.got, 5u);
}

TEST(StateDiff, FingerprintIgnoresPredicates)
{
    ArchState a, b;
    b.writePred(3, true);
    EXPECT_EQ(stateFingerprint(a), stateFingerprint(b));
    b.writeReg(1, 1);
    EXPECT_NE(stateFingerprint(a), stateFingerprint(b));
}

// ------------------------------------------------------- non-halt hard paths

TEST(NonHalt, EmulatorReportsStepLimit)
{
    Program p = infiniteLoopFn().lower();
    Emulator emu;
    EmuResult r = emu.run(p, nullptr, 10'000);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.dynInsts, 10'000u);
}

TEST(NonHalt, FuzzCheckFlagsNonHaltingProgram)
{
    FuzzOptions opts;
    opts.runCore = false;
    opts.emuMaxSteps = 10'000;
    CheckOutcome c = checkProgram(infiniteLoopFn(), opts);
    EXPECT_FALSE(c.ok);
    EXPECT_EQ(c.kind, "nonhalt");
}

TEST(NonHalt, VerifyVariantEquivalenceRejectsMissingNormal)
{
    IrFunction fn = generateProgram(2);
    auto variants = compileAllVariants(fn);
    variants.erase(BinaryVariant::Normal);
    EXPECT_THROW(verifyVariantEquivalence(variants), FatalError);
}

TEST(NonHalt, VerifyVariantEquivalenceNamesDivergingWord)
{
    IrFunction fn = generateProgram(2);
    auto variants = compileAllVariants(fn);
    // Sabotage one variant: a kernel computing a different checksum.
    IrFunction other = generateProgram(4);
    variants[BinaryVariant::BaseMax] =
        compileVariant(other, BinaryVariant::Normal, BranchStats{});
    try {
        verifyVariantEquivalence(variants);
        FAIL() << "divergence not detected";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("diverged"),
                  std::string::npos)
            << e.what();
    }
}

// ------------------------------------------------------------- end to end

TEST(FuzzCampaign, SmokeMatrixRunsClean)
{
    FuzzOptions opts;
    opts.seed = 7;
    opts.runs = 15;
    CheckOutcome probe; // silence unused warnings on some compilers
    (void)probe;
    FuzzReport rep = fuzzCampaign(opts);
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.programs, 15u);
    EXPECT_EQ(rep.variantsChecked, 15u * 5u - 5u * rep.compileRejects);
    EXPECT_GT(rep.coreRuns, 0u);
}

TEST(FuzzCampaign, ReproducerFormatReplays)
{
    IrFunction fn = generateProgram(9);
    FuzzFailure f;
    f.seed = 9;
    f.kind = "synthetic";
    f.detail = "multi\nline detail";
    std::string text = formatReproducer(f, fn);
    EXPECT_NE(text.find("; seed=9"), std::string::npos);
    EXPECT_NE(text.find("kind=synthetic"), std::string::npos);

    FuzzOptions opts;
    opts.runCore = false;
    CheckOutcome c = replayReproducer(text, opts);
    EXPECT_TRUE(c.ok); // this program has no bug: replay comes back clean
    EXPECT_EQ(c.variantsChecked, 5u);
}

TEST(FuzzCampaign, FailurePathShrinksAndWritesReproducer)
{
    // Drive the full failure machinery without needing a compiler bug:
    // a 10-step emulator budget flags every real program as non-halting,
    // and that failure survives shrinking (smaller programs still
    // exceed 10 steps until almost nothing is left).
    const std::string dir =
        ::testing::TempDir() + "/wisc_fuzz_failure_path";
    FuzzOptions opts;
    opts.seed = 21;
    opts.runs = 2;
    opts.runCore = false;
    opts.emuMaxSteps = 10;
    opts.reproDir = dir;

    FuzzReport rep = fuzzCampaign(opts);
    ASSERT_FALSE(rep.ok());
    for (const FuzzFailure &f : rep.failures) {
        EXPECT_EQ(f.kind, "nonhalt");
        EXPECT_FALSE(f.minimizedIr.empty());
        ASSERT_FALSE(f.reproPath.empty());

        std::ifstream in(f.reproPath);
        ASSERT_TRUE(in) << f.reproPath;
        std::ostringstream body;
        body << in.rdbuf();

        // Still fails under the budget that produced it...
        CheckOutcome again = replayReproducer(body.str(), opts);
        EXPECT_FALSE(again.ok);
        EXPECT_EQ(again.kind, "nonhalt");
        // ...and checks out clean under a sane budget (the "bug" is
        // the budget, not the program).
        FuzzOptions sane;
        sane.runCore = false;
        EXPECT_TRUE(replayReproducer(body.str(), sane).ok);
    }
}

TEST(FuzzCampaign, DispatchDifferentialCoversEveryVariant)
{
    // The switch-vs-threaded cross-check runs once per variant
    // emulation by default, and --no-dispatch turns it off entirely.
    FuzzOptions opts;
    opts.seed = 11;
    opts.runs = 5;
    opts.runCore = false;
    FuzzReport rep = fuzzCampaign(opts);
    EXPECT_TRUE(rep.ok());
    EXPECT_GT(rep.dispatchChecked, 0u);
    EXPECT_EQ(rep.dispatchChecked, rep.variantsChecked);

    opts.checkDispatch = false;
    FuzzReport off = fuzzCampaign(opts);
    EXPECT_TRUE(off.ok());
    EXPECT_EQ(off.dispatchChecked, 0u);
}

TEST(FuzzCampaign, AttributionInvariantChecked)
{
    // The smoke matrix carries collectAttribution points; a clean pass
    // means sum(attrib.*) == cycles held on every one of them.
    FuzzOptions opts;
    opts.seed = 3;
    opts.runs = 3;
    FuzzReport rep = fuzzCampaign(opts);
    EXPECT_TRUE(rep.ok());
    EXPECT_GE(rep.coreRuns,
              rep.programs * 5u * 3u); // 3 matrix points + poll twins
}

} // namespace
} // namespace wisc
