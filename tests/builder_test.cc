/**
 * @file
 * Tests for the KernelBuilder API contracts: block layout conventions
 * (contiguous hammock regions, Figure-3 ordering), loop shapes, data
 * attachment, leaBlock address materialization, and misuse detection.
 */

#include <gtest/gtest.h>

#include "arch/emulator.hh"
#include "common/log.hh"
#include "compiler/builder.hh"

namespace wisc {
namespace {

TEST(BuilderTest, EntryBlockIsZero)
{
    KernelBuilder b;
    b.li(4, 1);
    IrFunction fn = b.finish();
    EXPECT_EQ(fn.entry(), 0u);
    EXPECT_EQ(fn.block(0).name, "entry");
}

TEST(BuilderTest, IfThenElseLayoutMatchesFigure3)
{
    // Figure 3 layout: head, else (fallthrough), then (branch target),
    // join — ascending block ids.
    KernelBuilder b;
    b.cmpi(Opcode::CmpLtI, 1, 2, 10, 5);
    b.ifThenElse(1, 2, [&] { b.li(4, 1); }, [&] { b.li(4, 2); });
    IrFunction fn = b.finish();

    const Terminator &t = fn.block(0).term;
    ASSERT_EQ(t.kind, TermKind::CondBr);
    EXPECT_EQ(t.next, 1u) << "else arm falls through";
    EXPECT_EQ(t.taken, 2u) << "then arm is the branch target";
    EXPECT_GT(t.taken, t.next) << "forward layout";
    // Else ends in a jump to the join; then falls through to it.
    EXPECT_EQ(fn.block(1).term.kind, TermKind::Jump);
    EXPECT_EQ(fn.block(1).term.taken, 3u);
    EXPECT_EQ(fn.block(2).term.kind, TermKind::Fallthrough);
    EXPECT_EQ(fn.block(2).term.next, 3u);
}

TEST(BuilderTest, NestedArmsKeepRegionContiguous)
{
    KernelBuilder b;
    b.cmpi(Opcode::CmpLtI, 1, 2, 10, 5);
    b.ifThenElse(
        1, 2, [&] { b.li(4, 1); },
        [&] {
            b.cmpi(Opcode::CmpLtI, 3, 4, 10, 2);
            b.ifThen(3, 4, [&] { b.li(4, 3); });
        });
    IrFunction fn = b.finish();

    // The outer join must have the highest id among the region blocks
    // (created last), so the region [head+1, join-1] is contiguous.
    const Terminator &t = fn.block(0).term;
    BlockId join = 0;
    for (BlockId i = 0; i < fn.numBlocks(); ++i)
        join = std::max(join, i);
    EXPECT_LT(t.taken, fn.numBlocks());
    EXPECT_LT(t.next, t.taken);
    (void)join;
}

TEST(BuilderTest, DoWhileRunsAtLeastOnce)
{
    KernelBuilder b;
    b.li(4, 0);
    b.li(10, 100); // start beyond the bound: still one iteration
    b.doWhileLoop(1, [&] {
        b.addi(4, 4, 1);
        b.addi(10, 10, 1);
        b.cmpi(Opcode::CmpLtI, 1, 0, 10, 5);
    });
    IrFunction fn = b.finish();
    Emulator emu;
    EXPECT_EQ(emu.run(fn.lower()).resultReg, 1);
}

TEST(BuilderTest, WhileRunsZeroTimes)
{
    KernelBuilder b;
    b.li(4, 0);
    b.li(10, 100);
    b.whileLoop([&] { b.cmpi(Opcode::CmpLtI, 1, 2, 10, 5); }, 1, 2,
                [&] {
                    b.addi(4, 4, 1);
                    b.addi(10, 10, 1);
                });
    IrFunction fn = b.finish();
    Emulator emu;
    EXPECT_EQ(emu.run(fn.lower()).resultReg, 0);
}

TEST(BuilderTest, DataSegmentsAttach)
{
    KernelBuilder b;
    b.data(0x20000, {11, 22, 33});
    b.li(6, 0x20000);
    b.ld(4, 6, 8);
    IrFunction fn = b.finish();
    Emulator emu;
    EXPECT_EQ(emu.run(fn.lower()).resultReg, 22);
}

TEST(BuilderTest, LeaBlockMaterializesAddress)
{
    KernelBuilder b;
    b.leaBlock(5, 0); // address of the entry block
    b.mov(4, 5);
    IrFunction fn = b.finish();
    Emulator emu;
    EXPECT_EQ(emu.run(fn.lower()).resultReg,
              static_cast<Word>(kTextBase));
}

TEST(BuilderTest, GuardedEmitOutsideRegions)
{
    // Hand-predicated instructions pass through all passes untouched.
    KernelBuilder b;
    b.pset(1, true);
    Instruction gi;
    gi.op = Opcode::AddI;
    gi.qp = 1;
    gi.rd = 4;
    gi.rs1 = 4;
    gi.imm = 9;
    b.emit(gi);
    IrFunction fn = b.finish();
    Emulator emu;
    EXPECT_EQ(emu.run(fn.lower()).resultReg, 9);
}

TEST(BuilderTest, UserPredicatesReserveFreshPool)
{
    KernelBuilder b;
    b.pset(7, true); // highest user predicate
    IrFunction fn = b.finish();
    PredIdx fresh = fn.allocPred();
    EXPECT_GT(fresh, 7);
}

TEST(BuilderTest, FinishTwiceIsFatal)
{
    KernelBuilder b;
    b.li(4, 1);
    b.finish();
    EXPECT_DEATH(b.finish(), "finish");
}

TEST(BuilderTest, BranchOnP0Rejected)
{
    KernelBuilder b;
    EXPECT_DEATH(b.ifThen(0, 1, [] {}), "predicate pair");
}

} // namespace
} // namespace wisc
