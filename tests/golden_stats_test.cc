/**
 * @file
 * Golden-stat regression test: replays the fixed goldenRuns() matrix
 * (one run per binary type plus select-µop and small-window machines)
 * and compares the FULL StatSet — every counter and every histogram
 * bucket — against values captured from the seed (poll-scheduler) core.
 * This is the proof that the event-driven wakeup scheduler and the
 * allocation-free DynInst layout are cycle-identical, not just
 * approximately right.
 *
 * If a timing-model change is *intentional*, regenerate the baseline:
 *   build/tests/golden_stats_gen > tests/golden_stats_data.inc
 */

#include <gtest/gtest.h>

#include <map>

#include "golden_runs.hh"

namespace wisc {
namespace {

struct GoldenCounter
{
    const char *name;
    unsigned long long value;
};

struct GoldenHist
{
    const char *name;
    unsigned long long count;
    std::vector<unsigned long long> buckets;
};

struct GoldenRun
{
    const char *label;
    unsigned long long result[4]; ///< cycles, uops, resultReg, memFp
    std::vector<GoldenCounter> counters;
    std::vector<GoldenHist> hists;
};

#include "golden_stats_data.inc"

TEST(GoldenStats, MatrixMatchesGoldenRunList)
{
    // The data file must cover exactly the configured matrix.
    auto runs = goldenRuns();
    ASSERT_EQ(kGolden.size(), runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i)
        EXPECT_EQ(runs[i].label, kGolden[i].label);
}

class GoldenStats : public ::testing::TestWithParam<std::size_t>
{
};

INSTANTIATE_TEST_SUITE_P(
    Runs, GoldenStats, ::testing::Range<std::size_t>(0, kGolden.size()),
    [](const ::testing::TestParamInfo<std::size_t> &info) {
        std::string n = kGolden[info.param].label;
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST_P(GoldenStats, FullStatSetBitIdentical)
{
    const GoldenRunSpec spec = goldenRuns()[GetParam()];
    const GoldenRun &g = kGolden[GetParam()];

    static std::map<std::string, CompiledWorkload> compiled;
    auto it = compiled.find(spec.workload);
    if (it == compiled.end())
        it = compiled.emplace(spec.workload,
                              compileWorkload(spec.workload)).first;
    RunOutcome o = run(RunRequest{it->second, spec.variant, spec.input,
                                  spec.params});

    EXPECT_EQ(o.result.cycles, g.result[0]);
    EXPECT_EQ(o.result.retiredUops, g.result[1]);
    EXPECT_EQ(static_cast<unsigned long long>(o.result.resultReg),
              g.result[2]);
    EXPECT_EQ(o.result.memFingerprint, g.result[3]);

    // Counters: exact same set of names, exact same values.
    ASSERT_EQ(o.stats.size(), g.counters.size())
        << "counter set changed (registration is part of the contract)";
    std::size_t i = 0;
    for (const auto &[name, value] : o.stats) {
        EXPECT_EQ(name, g.counters[i].name);
        EXPECT_EQ(value, g.counters[i].value) << name;
        ++i;
    }

    // Histograms: same set, same count, same buckets.
    ASSERT_EQ(o.hists.size(), g.hists.size());
    i = 0;
    for (const auto &[name, h] : o.hists) {
        EXPECT_EQ(name, g.hists[i].name);
        EXPECT_EQ(h.count, g.hists[i].count) << name;
        ASSERT_EQ(h.buckets.size(), g.hists[i].buckets.size()) << name;
        for (std::size_t b = 0; b < h.buckets.size(); ++b)
            EXPECT_EQ(h.buckets[b], g.hists[i].buckets[b])
                << name << " bucket " << b;
        ++i;
    }
}

} // namespace
} // namespace wisc
