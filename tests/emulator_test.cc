/**
 * @file
 * Unit tests for architectural state, the undo log, the instruction
 * executor (including predication and unc-compare semantics), and the
 * functional emulator with profiling.
 */

#include <gtest/gtest.h>

#include "arch/emulator.hh"
#include "arch/executor.hh"
#include "arch/state.hh"
#include "isa/assembler.hh"

namespace wisc {
namespace {

TEST(MemoryTest, DefaultZero)
{
    Memory m;
    EXPECT_EQ(m.readByte(0x1234), 0);
    EXPECT_EQ(m.readWord(0xdeadbeef), 0u);
}

TEST(MemoryTest, ByteAndWordRoundTrip)
{
    Memory m;
    m.writeWord(0x1000, 0x0123456789abcdefull);
    EXPECT_EQ(m.readWord(0x1000), 0x0123456789abcdefull);
    // Little endian.
    EXPECT_EQ(m.readByte(0x1000), 0xef);
    EXPECT_EQ(m.readByte(0x1007), 0x01);
}

TEST(MemoryTest, CrossPageWord)
{
    Memory m;
    Addr a = Memory::kPageSize - 3;
    m.writeWord(a, 0x1122334455667788ull);
    EXPECT_EQ(m.readWord(a), 0x1122334455667788ull);
    EXPECT_GE(m.numPages(), 2u);
}

TEST(MemoryTest, FingerprintIgnoresZeroWrites)
{
    Memory a, b;
    a.writeWord(0x5000, 42);
    a.writeWord(0x5000, 0); // back to zero
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(MemoryTest, FingerprintDetectsDifferences)
{
    Memory a, b;
    a.writeWord(0x5000, 42);
    b.writeWord(0x5000, 43);
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(ArchStateTest, RegisterZeroHardwired)
{
    ArchState s;
    s.writeReg(kRegZero, 99);
    EXPECT_EQ(s.readReg(kRegZero), 0);
}

TEST(ArchStateTest, PredicateZeroHardwiredTrue)
{
    ArchState s;
    s.writePred(0, false);
    EXPECT_TRUE(s.readPred(0));
}

TEST(UndoLogTest, RollbackRestoresRegsPredsMem)
{
    ArchState s;
    UndoLog log;
    s.writeReg(5, 100);
    s.writePred(3, true);
    s.mem().writeWord(0x8000, 7);

    auto m = log.mark();
    log.recordReg(5, s.readReg(5));
    s.writeReg(5, 200);
    log.recordPred(3, s.readPred(3));
    s.writePred(3, false);
    log.recordMem(0x8000, 8, s.mem().readWord(0x8000));
    s.mem().writeWord(0x8000, 9);

    log.rollbackTo(m, s);
    EXPECT_EQ(s.readReg(5), 100);
    EXPECT_TRUE(s.readPred(3));
    EXPECT_EQ(s.mem().readWord(0x8000), 7u);
}

TEST(UndoLogTest, CommitKeepsMarksValid)
{
    ArchState s;
    UndoLog log;
    log.recordReg(5, 1);
    auto m1 = log.mark();
    log.recordReg(5, 2);
    log.commitTo(m1); // retire the first entry
    auto m2 = log.mark();
    log.recordReg(6, 3);
    s.writeReg(6, 99);
    log.rollbackTo(m2, s);
    EXPECT_EQ(s.readReg(6), 3);
    EXPECT_EQ(log.size(), 1u); // the uncommitted reg-5 entry remains
}

TEST(ExecutorTest, PredicatedOffIsNop)
{
    ArchState s;
    s.writePred(1, false);
    s.writeReg(2, 10);
    s.writeReg(3, 20);

    Instruction add;
    add.op = Opcode::Add;
    add.qp = 1;
    add.rd = 4;
    add.rs1 = 2;
    add.rs2 = 3;
    StepResult r = executeInst(add, 0, 10, s, nullptr);
    EXPECT_FALSE(r.qpTrue);
    EXPECT_EQ(s.readReg(4), 0);
    EXPECT_EQ(r.memSize, 0);
}

TEST(ExecutorTest, UncCompareClearsWhenNullified)
{
    ArchState s;
    s.writePred(1, false); // guard false
    s.writePred(2, true);  // stale TRUE values that must be cleared
    s.writePred(3, true);

    Instruction cmp;
    cmp.op = Opcode::CmpLt;
    cmp.qp = 1;
    cmp.pd = 2;
    cmp.pd2 = 3;
    cmp.unc = true;
    executeInst(cmp, 0, 10, s, nullptr);
    EXPECT_FALSE(s.readPred(2));
    EXPECT_FALSE(s.readPred(3));
}

TEST(ExecutorTest, NonUncComparePreservesWhenNullified)
{
    ArchState s;
    s.writePred(1, false);
    s.writePred(2, true);

    Instruction cmp;
    cmp.op = Opcode::CmpLt;
    cmp.qp = 1;
    cmp.pd = 2;
    executeInst(cmp, 0, 10, s, nullptr);
    EXPECT_TRUE(s.readPred(2));
}

TEST(ExecutorTest, CompareWritesComplement)
{
    ArchState s;
    s.writeReg(5, 3);
    s.writeReg(6, 4);
    Instruction cmp;
    cmp.op = Opcode::CmpLt;
    cmp.pd = 1;
    cmp.pd2 = 2;
    cmp.rs1 = 5;
    cmp.rs2 = 6;
    executeInst(cmp, 0, 10, s, nullptr);
    EXPECT_TRUE(s.readPred(1));
    EXPECT_FALSE(s.readPred(2));
}

TEST(ExecutorTest, DivByZeroAndOverflowDefined)
{
    ArchState s;
    s.writeReg(5, 42);
    s.writeReg(6, 0);
    Instruction div;
    div.op = Opcode::Div;
    div.rd = 7;
    div.rs1 = 5;
    div.rs2 = 6;
    executeInst(div, 0, 10, s, nullptr);
    EXPECT_EQ(s.readReg(7), 0);

    s.writeReg(5, std::numeric_limits<Word>::min());
    s.writeReg(6, -1);
    executeInst(div, 0, 10, s, nullptr);
    EXPECT_EQ(s.readReg(7), std::numeric_limits<Word>::min());

    Instruction rem;
    rem.op = Opcode::Rem;
    rem.rd = 7;
    rem.rs1 = 5;
    rem.rs2 = 6;
    executeInst(rem, 0, 10, s, nullptr);
    EXPECT_EQ(s.readReg(7), 0);
}

TEST(ExecutorTest, BranchTakenIffGuardTrue)
{
    ArchState s;
    Instruction br;
    br.op = Opcode::Br;
    br.qp = 1;
    br.target = 5;

    s.writePred(1, true);
    StepResult r = executeInst(br, 0, 10, s, nullptr);
    EXPECT_TRUE(r.taken);
    EXPECT_EQ(r.nextIndex, 5u);

    s.writePred(1, false);
    r = executeInst(br, 0, 10, s, nullptr);
    EXPECT_FALSE(r.taken);
    EXPECT_EQ(r.nextIndex, 1u);
}

TEST(ExecutorTest, CallWritesLinkAndRetReturns)
{
    ArchState s;
    Instruction call;
    call.op = Opcode::Call;
    call.rd = kRegRa;
    call.target = 7;
    StepResult r = executeInst(call, 3, 10, s, nullptr);
    EXPECT_EQ(r.nextIndex, 7u);
    EXPECT_EQ(s.readReg(kRegRa), static_cast<Word>(instAddr(4)));

    Instruction ret;
    ret.op = Opcode::Ret;
    ret.rs1 = kRegRa;
    r = executeInst(ret, 7, 10, s, nullptr);
    EXPECT_EQ(r.nextIndex, 4u);
    EXPECT_FALSE(r.badTarget);
}

TEST(ExecutorTest, IndirectBadTargetFlagged)
{
    ArchState s;
    s.writeReg(9, 0x3); // below the text base
    Instruction jr;
    jr.op = Opcode::JmpR;
    jr.rs1 = 9;
    StepResult r = executeInst(jr, 2, 10, s, nullptr);
    EXPECT_TRUE(r.badTarget);
    EXPECT_EQ(r.nextIndex, 3u);
}

TEST(ExecutorTest, UndoOfStoreAndLoad)
{
    ArchState s;
    UndoLog log;
    s.writeReg(2, 0x9000);
    s.writeReg(3, 77);
    s.mem().writeWord(0x9008, 55);

    Instruction st;
    st.op = Opcode::St;
    st.rs1 = 2;
    st.rs2 = 3;
    st.imm = 8;
    auto m = log.mark();
    executeInst(st, 0, 10, s, &log);
    EXPECT_EQ(s.mem().readWord(0x9008), 77u);
    log.rollbackTo(m, s);
    EXPECT_EQ(s.mem().readWord(0x9008), 55u);
}

TEST(EmulatorTest, LoopSum)
{
    // Sum 1..10 into r4.
    Program p = assemble(R"(
        li r4, 0
        li r5, 1
        loop:
        add r4, r4, r5
        addi r5, r5, 1
        cmpi.le p1, p0, r5, 10
        br p1, loop
        halt
    )");
    Emulator emu;
    EmuResult r = emu.run(p);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.resultReg, 55);
}

TEST(EmulatorTest, MemoryProgram)
{
    Program p = assemble(R"(
        .data 0x20000 5 6 7
        li r2, 0x20000
        ld r3, r2, 0
        ld r4, r2, 8
        add r4, r3, r4
        st r4, r2, 16
        halt
    )");
    Emulator emu;
    EmuResult r = emu.run(p);
    EXPECT_EQ(r.resultReg, 11);
    EXPECT_EQ(emu.state().mem().readWord(0x20010), 11u);
}

TEST(EmulatorTest, ProfileCountsBranches)
{
    Program p = assemble(R"(
        li r5, 0
        loop:
        addi r5, r5, 1
        cmpi.lt p1, p0, r5, 4
        br p1, loop
        halt
    )");
    Emulator emu;
    Profile prof;
    emu.run(p, &prof);
    // The branch at index 3 executes 4 times, taken 3 of them.
    EXPECT_EQ(prof.perInst[3].execCount, 4u);
    EXPECT_EQ(prof.perInst[3].takenCount, 3u);
    EXPECT_DOUBLE_EQ(prof.takenProb(3), 0.75);
    EXPECT_DOUBLE_EQ(prof.mispredictEstimate(3), 0.25);
}

TEST(EmulatorTest, MaxStepsTerminates)
{
    Program p = assemble(R"(
        loop:
        jmp loop
        halt
    )");
    Emulator emu;
    EmuResult r = emu.run(p, nullptr, 1000);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.dynInsts, 1000u);
}

TEST(EmulatorTest, PredFalseCounted)
{
    Program p = assemble(R"(
        pset p1, 0
        (p1) addi r4, r4, 1
        (p1) addi r4, r4, 1
        halt
    )");
    Emulator emu;
    EmuResult r = emu.run(p);
    EXPECT_EQ(r.predFalse, 2u);
    EXPECT_EQ(r.resultReg, 0);
}

} // namespace
} // namespace wisc
