/**
 * @file
 * Workload-suite tests, parameterized over all nine benchmarks: every
 * binary variant of every kernel halts and computes the same result on
 * every input set (the end-to-end compiler-correctness property), the
 * wish binaries contain the expected branch populations, and inputs are
 * deterministic.
 */

#include <gtest/gtest.h>

#include "arch/emulator.hh"
#include "common/log.hh"
#include "workloads/workload.hh"

namespace wisc {
namespace {

class WorkloadSuite : public ::testing::TestWithParam<std::string>
{
};

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadSuite,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

TEST_P(WorkloadSuite, AllVariantsEquivalentOnAllInputs)
{
    CompiledWorkload w = compileWorkload(GetParam());
    for (InputSet in : {InputSet::A, InputSet::B, InputSet::C}) {
        Word ref = 0;
        std::uint64_t refMem = 0;
        bool first = true;
        for (BinaryVariant v : kAllVariants) {
            Emulator emu;
            EmuResult r = emu.run(programFor(w, v, in));
            ASSERT_TRUE(r.halted)
                << GetParam() << " " << variantName(v) << " "
                << inputSetName(in);
            if (first) {
                ref = r.resultReg;
                refMem = r.memFingerprint;
                first = false;
            } else {
                EXPECT_EQ(r.resultReg, ref)
                    << GetParam() << " " << variantName(v) << " "
                    << inputSetName(in);
                EXPECT_EQ(r.memFingerprint, refMem)
                    << GetParam() << " " << variantName(v) << " "
                    << inputSetName(in);
            }
        }
    }
}

TEST_P(WorkloadSuite, NormalBinaryHasNoWishBranches)
{
    CompiledWorkload w = compileWorkload(GetParam());
    EXPECT_EQ(w.variants.at(BinaryVariant::Normal).staticWishBranches(),
              0u);
    EXPECT_EQ(w.variants.at(BinaryVariant::BaseDef).staticWishBranches(),
              0u);
    EXPECT_EQ(w.variants.at(BinaryVariant::BaseMax).staticWishBranches(),
              0u);
}

TEST_P(WorkloadSuite, WishBinariesContainWishBranches)
{
    CompiledWorkload w = compileWorkload(GetParam());
    const CompiledBinary &wjj = w.variants.at(BinaryVariant::WishJumpJoin);
    EXPECT_GT(wjj.staticWishJumps, 0u)
        << "every kernel has at least one wishable hammock";
    EXPECT_EQ(wjj.staticWishLoops, 0u)
        << "the jump/join binary must not convert loops (Table 3)";
}

TEST_P(WorkloadSuite, PredicationAddsDynamicNops)
{
    CompiledWorkload w = compileWorkload(GetParam());
    Emulator emu;
    EmuResult n = emu.run(programFor(w, BinaryVariant::Normal,
                                     InputSet::A));
    EmuResult m = emu.run(programFor(w, BinaryVariant::BaseMax,
                                     InputSet::A));
    // §2.2: predicated code fetches instructions whose predicates are
    // FALSE.
    EXPECT_GE(m.predFalse, n.predFalse);
    EXPECT_GE(m.dynInsts, n.dynInsts);
}

TEST_P(WorkloadSuite, InputsAreDeterministic)
{
    auto a1 = workloadInput(GetParam(), InputSet::A);
    auto a2 = workloadInput(GetParam(), InputSet::A);
    ASSERT_EQ(a1.size(), a2.size());
    for (std::size_t i = 0; i < a1.size(); ++i) {
        EXPECT_EQ(a1[i].base, a2[i].base);
        EXPECT_EQ(a1[i].words, a2[i].words);
    }
}

TEST_P(WorkloadSuite, InputSetsDiffer)
{
    Emulator emu;
    CompiledWorkload w = compileWorkload(GetParam());
    EmuResult a =
        emu.run(programFor(w, BinaryVariant::Normal, InputSet::A));
    EmuResult c =
        emu.run(programFor(w, BinaryVariant::Normal, InputSet::C));
    // Different inputs must exercise the kernel differently (results
    // and/or instruction counts differ).
    EXPECT_TRUE(a.resultReg != c.resultReg || a.dynInsts != c.dynInsts);
}

TEST(WorkloadRegistryTest, NamesMatchPaperOrder)
{
    const auto &names = workloadNames();
    ASSERT_EQ(names.size(), 9u);
    EXPECT_EQ(names.front(), "gzip");
    EXPECT_EQ(names.back(), "twolf");
}

TEST(WorkloadRegistryTest, UnknownNameIsFatal)
{
    EXPECT_THROW(buildWorkloadFn("nonesuch"), FatalError);
    EXPECT_THROW(workloadInput("nonesuch", InputSet::A), FatalError);
}

TEST(WorkloadRegistryTest, WishLoopBenchmarksHaveLoops)
{
    // gzip, vpr, parser, gap, and bzip2 are built with wish-loop
    // candidates; mcf/crafty/vortex/twolf have none by design.
    for (const char *name : {"gzip", "vpr", "parser", "gap", "bzip2"}) {
        CompiledWorkload w = compileWorkload(name);
        EXPECT_GT(w.variants.at(BinaryVariant::WishJumpJoinLoop)
                      .staticWishLoops,
                  0u)
            << name;
    }
}

} // namespace
} // namespace wisc
