/**
 * @file
 * Ablation: the overestimating wish-loop predictor (§3.2's suggested
 * specialized predictor, DESIGN.md §5.4). Compares wish-jjl performance
 * with and without the trip-count overestimation bias, and reports the
 * early/late/no-exit mix it induces.
 */

#include <iostream>

#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(ablation_loop_bias)

namespace {

int
benchMain(BenchCli &cli)
{
    printBanner(std::cout, "Ablation: overestimating wish-loop predictor",
                "wish-jjl relative time and loop-exit classification "
                "(input A)");

    const std::vector<std::string> names = {"gzip", "vpr", "parser",
                                            "bzip2", "gap"};
    std::vector<std::vector<std::vector<std::string>>> rows(names.size());
    ParallelRunner &pool = ParallelRunner::shared();
    pool.forEach(names.size(), [&](std::size_t i) {
        const std::string &name = names[i];
        CompiledWorkload w = compileWorkload(name);
        for (bool bias : {false, true}) {
            SimParams p;
            p.wishLoopBias = bias;
            double n = static_cast<double>(
                run(RunRequest{w, BinaryVariant::Normal, InputSet::A, p})
                    .result.cycles);
            RunOutcome r = run(RunRequest{
                w, BinaryVariant::WishJumpJoinLoop, InputSet::A, p});
            rows[i].push_back(
                {name, bias ? "on" : "off",
                 Table::num(static_cast<double>(r.result.cycles) / n),
                 std::to_string(r.stat("wish.loop.low.early_exit")),
                 std::to_string(r.stat("wish.loop.low.late_exit")),
                 std::to_string(r.stat("wish.loop.low.no_exit"))});
        }
    });

    Table t({"benchmark", "bias", "rel-time", "early", "late", "no-exit"});
    for (auto &bench : rows)
        for (auto &row : bench)
            t.addRow(std::move(row));
    t.print(std::cout);
    std::cout << "\nThe bias converts early exits (full flush) into late "
                 "exits (predicated NOPs, no flush).\n";
    cli.addTable("table", t);
    return cli.finish();
}

} // namespace
