/**
 * @file
 * Ablation: the overestimating wish-loop predictor (§3.2's suggested
 * specialized predictor, DESIGN.md §5.4). Compares wish-jjl performance
 * with and without the trip-count overestimation bias, and reports the
 * early/late/no-exit mix it induces.
 */

#include <iostream>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace wisc;

int
main()
{
    printBanner(std::cout, "Ablation: overestimating wish-loop predictor",
                "wish-jjl relative time and loop-exit classification "
                "(input A)");

    Table t({"benchmark", "bias", "rel-time", "early", "late", "no-exit"});
    for (const std::string &name :
         {std::string("gzip"), std::string("vpr"), std::string("parser"),
          std::string("bzip2"), std::string("gap")}) {
        CompiledWorkload w = compileWorkload(name);
        for (bool bias : {false, true}) {
            SimParams p;
            p.wishLoopBias = bias;
            double n = static_cast<double>(
                runWorkload(w, BinaryVariant::Normal, InputSet::A, p)
                    .result.cycles);
            RunOutcome r = runWorkload(
                w, BinaryVariant::WishJumpJoinLoop, InputSet::A, p);
            t.addRow({name, bias ? "on" : "off",
                      Table::num(static_cast<double>(r.result.cycles) / n),
                      std::to_string(r.stat("wish.loop.low.early_exit")),
                      std::to_string(r.stat("wish.loop.low.late_exit")),
                      std::to_string(r.stat("wish.loop.low.no_exit"))});
        }
    }
    t.print(std::cout);
    std::cout << "\nThe bias converts early exits (full flush) into late "
                 "exits (predicated NOPs, no flush).\n";
    return 0;
}
