/**
 * @file
 * Dynamic predication vs compiler wish branches, head to head.
 *
 * The paper's wish branches need the compiler to mark candidate
 * branches ahead of time; the merge-point mechanism (SimParams::dynPred
 * = MergePoint) predicates *unmarked* low-confidence branches by
 * predicting their reconvergence point in hardware, and the fetch gate
 * (FetchGate) is the cheaper fallback that merely throttles fetch on
 * low confidence. This sweep runs four modes on every benchmark:
 *
 *   baseline     normal binary, dynPred=Off        (nothing adaptive)
 *   wish-jjl     wish binary, compiler wish branches (the paper)
 *   merge-point  normal binary, dynPred=MergePoint  (hardware-only)
 *   fetch-gate   normal binary, dynPred=FetchGate   (hardware-only)
 *
 * under two predictor front ends (the paper's hybrid+JRS and TAGE+JRS),
 * with the attrib.* CPI stack collected per cell — every stack is
 * checked to sum exactly to the cell's cycles, in every mode. The
 * headline table reports each adaptive mode's speedup over baseline per
 * front end, answering: how much of the compiler-marked win can
 * hardware recover on its own?
 *
 * Under run_matrix --smoke (WISC_SMOKE=1) the sweep drops to three
 * benchmarks on the hybrid front end only.
 */

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/log.hh"
#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(dynpred_sweep)

namespace {

struct FrontEnd
{
    const char *label;
    PredictorKind predictor;
    ConfKind conf;
};

const FrontEnd kFrontEnds[] = {
    {"hybrid+jrs", PredictorKind::Hybrid, ConfKind::Jrs},
    {"tage+jrs", PredictorKind::Tage, ConfKind::Jrs},
};

/** One execution mode: binary variant + dynamic-predication knobs. */
struct Mode
{
    const char *label;
    BinaryVariant variant;
    bool wishEnabled;
    DynPredMode dynPred;
};

const Mode kModes[] = {
    {"baseline", BinaryVariant::Normal, false, DynPredMode::Off},
    {"wish-jjl", BinaryVariant::WishJumpJoinLoop, true, DynPredMode::Off},
    {"merge-point", BinaryVariant::Normal, false, DynPredMode::MergePoint},
    {"fetch-gate", BinaryVariant::Normal, false, DynPredMode::FetchGate},
};

/** The full attribution taxonomy; the stack must sum to cycles. */
const char *const kAttribNames[] = {
    "attrib.base",            "attrib.pred_nop",
    "attrib.pred_wait",       "attrib.flush_normal",
    "attrib.flush_wish_high", "attrib.flush_loop_early",
    "attrib.flush_loop_noexit", "attrib.cache_miss",
    "attrib.fetch_stall",     "attrib.rob_iq_full",
};

struct Cell
{
    std::size_t fe;
    std::size_t mode;
    std::size_t bench;
    RunOutcome out;
};

double
geomean(const std::vector<double> &xs)
{
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return xs.empty() ? 0.0 : std::exp(acc / xs.size());
}

int
benchMain(BenchCli &cli)
{
    const bool smoke = std::getenv("WISC_SMOKE") != nullptr;
    printBanner(std::cout,
                "Dynamic predication (merge-point / fetch-gate) vs "
                "compiler wish branches",
                smoke ? "smoke schedule; input A"
                      : "all benchmarks, hybrid+jrs and tage+jrs, "
                        "input A");

    std::vector<FrontEnd> fes(std::begin(kFrontEnds),
                              std::end(kFrontEnds));
    if (smoke)
        fes.resize(1);

    std::vector<std::string> benches = workloadNames();
    if (smoke)
        benches.resize(3);

    std::vector<CompiledWorkload> workloads(benches.size());
    ParallelRunner &pool = ParallelRunner::shared();
    pool.forEach(benches.size(), [&](std::size_t i) {
        workloads[i] = compileWorkload(benches[i]);
    });

    const std::size_t nModes = std::size(kModes);
    std::vector<Cell> cells;
    for (std::size_t f = 0; f < fes.size(); ++f)
        for (std::size_t m = 0; m < nModes; ++m)
            for (std::size_t b = 0; b < benches.size(); ++b)
                cells.push_back(Cell{f, m, b, {}});

    pool.forEach(cells.size(), [&](std::size_t i) {
        Cell &c = cells[i];
        const Mode &mode = kModes[c.mode];
        SimParams p;
        p.predictor = fes[c.fe].predictor;
        p.confKind = fes[c.fe].conf;
        p.wishEnabled = mode.wishEnabled;
        p.dynPred = mode.dynPred;
        p.collectAttribution = true;
        c.out = run(RunRequest{workloads[c.bench], mode.variant,
                               InputSet::A, p});
    });

    // Per-cell invariant: the CPI stack sums exactly to cycles in
    // every mode — dynamic predication must not leak unattributed (or
    // double-attributed) cycles.
    std::map<std::string, std::uint64_t> cycles;
    auto key = [&](std::size_t f, std::size_t m, std::size_t b) {
        return std::string(fes[f].label) + "/" + kModes[m].label + "/" +
               benches[b];
    };
    json::Value jcells = json::Value::array();
    for (const Cell &c : cells) {
        cli.noteSimulated(c.out.result.retiredUops,
                          c.out.result.cycles);
        std::uint64_t sum = 0;
        for (const char *name : kAttribNames) {
            auto it = c.out.stats.find(name);
            if (it != c.out.stats.end())
                sum += it->second;
        }
        if (sum != c.out.result.cycles)
            wisc_fatal("attribution stack sums to ", sum, " but ",
                       key(c.fe, c.mode, c.bench), " took ",
                       c.out.result.cycles, " cycles");
        cycles[key(c.fe, c.mode, c.bench)] = c.out.result.cycles;

        json::Value jc = json::Value::object();
        jc["predictor"] = fes[c.fe].label;
        jc["mode"] = kModes[c.mode].label;
        jc["benchmark"] = benches[c.bench];
        jc["cycles"] = c.out.result.cycles;
        jc["retired_uops"] = c.out.result.retiredUops;
        jc["ipc"] = c.out.result.cycles
                        ? static_cast<double>(c.out.result.retiredUops) /
                              static_cast<double>(c.out.result.cycles)
                        : 0.0;
        jc["mispredicts_per_1k_uops"] = c.out.mispredictsPer1K();
        auto stat = [&](const char *n) -> std::uint64_t {
            auto it = c.out.stats.find(n);
            return it == c.out.stats.end() ? 0 : it->second;
        };
        jc["dyn_triggers"] = stat("dyn.triggers");
        jc["dyn_region_success"] = stat("dyn.region_success");
        jc["dyn_region_failed"] = stat("dyn.region_failed");
        jc["dyn_saved_flushes"] = stat("dyn.saved_flushes");
        jc["dyn_fetch_gates"] = stat("dyn.fetch_gates");
        json::Value attrib = json::Value::object();
        for (const auto &st : c.out.stats)
            if (st.first.rfind("attrib.", 0) == 0)
                attrib[st.first.substr(7)] = st.second;
        jc["attrib"] = std::move(attrib);
        jcells.push(std::move(jc));
    }

    // Headline: each adaptive mode's speedup over the baseline,
    // per front end.
    json::Value jspeed = json::Value::object();
    json::Value jgm = json::Value::object();
    std::vector<Table> tables;
    for (std::size_t m = 1; m < nModes; ++m) {
        std::vector<std::string> header = {"benchmark"};
        for (const FrontEnd &fe : fes)
            header.push_back(fe.label);
        Table t(header);
        std::vector<std::vector<double>> perFe(fes.size());
        for (std::size_t b = 0; b < benches.size(); ++b) {
            std::vector<std::string> row = {benches[b]};
            for (std::size_t f = 0; f < fes.size(); ++f) {
                const double s =
                    static_cast<double>(cycles[key(f, 0, b)]) /
                    static_cast<double>(cycles[key(f, m, b)]);
                perFe[f].push_back(s);
                row.push_back(Table::num(s, 3) + "x");
                jspeed[std::string(kModes[m].label) + "/" +
                       fes[f].label + "/" + benches[b]] = s;
            }
            t.addRow(std::move(row));
        }
        std::vector<std::string> gmRow = {"geomean"};
        for (std::size_t f = 0; f < fes.size(); ++f) {
            const double g = geomean(perFe[f]);
            gmRow.push_back(Table::num(g, 3) + "x");
            jgm[std::string(kModes[m].label) + "/" + fes[f].label] = g;
        }
        t.addRow(std::move(gmRow));
        std::cout << kModes[m].label
                  << " speedup over the baseline binary\n";
        t.print(std::cout);
        std::cout << "\n";
        cli.addTable(std::string(kModes[m].label) + "_speedup", t);
        tables.push_back(std::move(t));
    }

    cli.add("cells", std::move(jcells));
    cli.add("speedup_vs_baseline", std::move(jspeed));
    cli.add("speedup_geomean", std::move(jgm));
    cli.add("smoke", json::Value(smoke));
    cli.add("cell_count",
            json::Value(static_cast<std::uint64_t>(cells.size())));
    return cli.finish();
}

} // namespace
