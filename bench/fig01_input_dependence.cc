/**
 * @file
 * Figure 1: execution time of predicated-code binaries relative to the
 * non-predicated binary, for three input sets per benchmark.
 *
 * The paper measured ORC-compiled binaries on a real Itanium-II; we run
 * the same experiment on the simulated machine. The point being
 * reproduced is input-set sensitivity: the same predicated binary wins
 * on one input and loses on another (paper: mcf -9%..+4%, bzip2
 * -1%..+16%).
 */

#include <iostream>

#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(fig01_input_dependence)

namespace {

int
benchMain(BenchCli &cli)
{
    printBanner(std::cout,
                "Figure 1: predicated-code execution time vs. input set",
                "BASE-MAX binary (every suitable region predicated), "
                "normalized to the normal-branch binary on the same "
                "input (< 1.0 means predication wins)");

    const std::vector<std::string> &names = workloadNames();
    std::vector<std::vector<std::string>> rows(names.size());
    ParallelRunner &pool = ParallelRunner::shared();
    pool.forEach(names.size(), [&](std::size_t i) {
        const std::string &name = names[i];
        CompiledWorkload w = compileWorkload(name);
        std::vector<std::string> row = {name};
        for (InputSet in : {InputSet::A, InputSet::B, InputSet::C}) {
            RunOutcome base =
                run(RunRequest{w, BinaryVariant::Normal, in});
            RunOutcome pred =
                run(RunRequest{w, BinaryVariant::BaseMax, in});
            row.push_back(Table::num(
                static_cast<double>(pred.result.cycles) /
                static_cast<double>(base.result.cycles)));
        }
        rows[i] = std::move(row);
    });

    Table t({"benchmark", "input-A", "input-B", "input-C"});
    for (auto &row : rows)
        t.addRow(std::move(row));
    t.print(std::cout);
    std::cout << "\nPaper shape: predication generally helps but the sign"
                 " flips with the input for some benchmarks.\n";
    cli.addTable("table", t);
    return cli.finish();
}

} // namespace
