/**
 * @file
 * Google-benchmark microbenchmarks of the simulator substrates: the
 * functional emulator, the instruction executor, the undo log, the
 * branch predictor stack, the JRS confidence estimator, the cache
 * hierarchy, the compiler pipeline, and the end-to-end timing core.
 */

#include <benchmark/benchmark.h>

#include "arch/emulator.hh"
#include "arch/executor.hh"
#include "common/rng.hh"
#include "compiler/builder.hh"
#include "compiler/driver.hh"
#include "isa/assembler.hh"
#include "uarch/bpred.hh"
#include "uarch/cache.hh"
#include "uarch/confidence.hh"
#include "uarch/core.hh"
#include "workloads/workload.hh"

namespace {

using namespace wisc;

Program
loopProgram(int trips)
{
    return assemble("li r4, 0\nli r5, 1\nloop:\nadd r4, r4, r5\n"
                    "addi r5, r5, 1\ncmpi.le p1, p0, r5, " +
                    std::to_string(trips) + "\nbr p1, loop\nhalt\n");
}

void
BM_EmulatorLoop(benchmark::State &state)
{
    Program p = loopProgram(10000);
    Emulator emu;
    for (auto _ : state) {
        EmuResult r = emu.run(p);
        wisc_assert(r.halted, "benchmark loop did not halt — the "
                              "measured steps are the cap, not the run");
        benchmark::DoNotOptimize(r.resultReg);
    }
    state.SetItemsProcessed(state.iterations() * 40002);
}
BENCHMARK(BM_EmulatorLoop);

void
BM_ExecutorAluInst(benchmark::State &state)
{
    ArchState s;
    Instruction add;
    add.op = Opcode::Add;
    add.rd = 5;
    add.rs1 = 6;
    add.rs2 = 7;
    for (auto _ : state) {
        StepResult r = executeInst(add, 0, 10, s, nullptr);
        benchmark::DoNotOptimize(r.nextIndex);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecutorAluInst);

void
BM_UndoLogRoundTrip(benchmark::State &state)
{
    ArchState s;
    UndoLog log;
    for (auto _ : state) {
        auto m = log.mark();
        for (int i = 0; i < 16; ++i) {
            log.recordReg(5, s.readReg(5));
            s.writeReg(5, i);
        }
        log.rollbackTo(m, s);
    }
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_UndoLogRoundTrip);

void
BM_HybridPredictor(benchmark::State &state)
{
    SimParams params;
    StatSet stats;
    HybridPredictor bp(params, stats);
    Rng rng(7);
    std::uint32_t pc = 100;
    for (auto _ : state) {
        BpredCheckpoint ckpt;
        bool pred = bp.predict(pc, ckpt);
        bool actual = rng.chance(0.7);
        bp.updateSpeculative(pc, pred);
        bp.train(pc, actual, ckpt);
        pc = 100 + static_cast<std::uint32_t>(rng.below(64));
        benchmark::DoNotOptimize(pred);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HybridPredictor);

void
BM_JrsConfidence(benchmark::State &state)
{
    SimParams params;
    StatSet stats;
    JrsConfidenceEstimator conf(params, stats);
    Rng rng(9);
    for (auto _ : state) {
        std::uint32_t pc = 100 + static_cast<std::uint32_t>(rng.below(32));
        std::uint64_t hist = rng.below(256);
        bool high = conf.estimate(pc, hist);
        conf.update(pc, hist, rng.chance(0.9));
        benchmark::DoNotOptimize(high);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JrsConfidence);

void
BM_CacheHierarchy(benchmark::State &state)
{
    SimParams params;
    StatSet stats;
    MemorySystem mem(params, stats);
    Rng rng(11);
    Cycle now = 0;
    for (auto _ : state) {
        unsigned lat = mem.loadAccess(rng.below(1 << 22), now);
        now += 1;
        benchmark::DoNotOptimize(lat);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchy);

void
BM_CompileAllVariants(benchmark::State &state)
{
    for (auto _ : state) {
        CompiledWorkload w = compileWorkload("gzip");
        benchmark::DoNotOptimize(w.variants.size());
    }
}
BENCHMARK(BM_CompileAllVariants);

void
BM_TimingCoreThroughput(benchmark::State &state)
{
    Program p = loopProgram(5000);
    SimParams params;
    for (auto _ : state) {
        StatSet stats;
        SimResult r = simulate(p, params, stats);
        benchmark::DoNotOptimize(r.cycles);
    }
    // Simulated µops per wall-clock second: the simulator's throughput.
    state.SetItemsProcessed(state.iterations() * 20002);
}
BENCHMARK(BM_TimingCoreThroughput);

} // namespace

BENCHMARK_MAIN();
