/**
 * @file
 * Golden validation of sampled simulation (DESIGN.md: sampling): every
 * kernel runs full-detail and sampled on the same machine, and the
 * bench reports per-kernel CPI error, window counts, and wall-clock
 * speedup, plus the aggregate targets — geomean CPI error and total
 * speedup. Architectural results (retired µops, result register,
 * memory fingerprint) must match *exactly*; that is asserted, not
 * reported.
 *
 * Sampling geometry adapts to kernel length (production SMARTS periods
 * assume billions of instructions; these runs are millions): a
 * detailed prefix covering the cold-start transient exactly, then ~32
 * windows of 8×ROB detailed warmup plus 16×ROB measured µops spread
 * across the statistically stationary remainder. Kernels run with
 * their outer trip counts scaled up (programFor's tripScale) so the
 * stationary part dominates — the regime sampling assumes.
 *
 * `WISC_SMOKE=1` (set by `run_matrix --smoke` and the sampling ctest
 * entry) reduces to two kernels at a small trip scale (where sampling
 * degenerates toward full detail — the smoke entry validates plumbing
 * and exactness invariants, not the statistics). Optimized non-smoke
 * runs enforce the acceptance floor: geomean CPI error <= 2%,
 * aggregate speedup >= 10x.
 */

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "arch/emulator.hh"
#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "uarch/fastfwd.hh"
#include "workloads/workload.hh"

using namespace wisc;

WISC_BENCH_ENTRY(sampling_validation)

namespace {

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

int
benchMain(BenchCli &cli)
{
    const bool smoke = std::getenv("WISC_SMOKE") != nullptr;
    printBanner(std::cout, "Sampled-simulation validation",
                "full vs sampled runs, wish-jjl binaries, input A");

    const std::vector<std::string> kernels =
        smoke ? std::vector<std::string>{"gzip", "mcf"} : workloadNames();

    Table t({"benchmark", "uops", "cpi_full", "cpi_samp", "err%",
             "windows", "wall_full_s", "wall_samp_s", "speedup"});

    double logRatioSum = 0.0;
    double wallFull = 0.0, wallSamp = 0.0;
    std::size_t n = 0;

    // The long-kernel matrix: trip counts scaled up so the cold-start
    // transient (compulsory misses over the data footprint) is a small
    // fraction of total cycles — the regime sampled simulation assumes,
    // and the regime the paper's own SPEC runs are in. Smoke keeps the
    // scale small so the ctest entry stays fast.
    const std::uint64_t kScale = smoke ? 4 : 64;

    for (const std::string &k : kernels) {
        CompiledWorkload w = compileWorkload(k);
        Program prog = programFor(w, BinaryVariant::WishJumpJoinLoop,
                                  InputSet::A, kScale);

        // Final-state checking re-runs the program on the reference
        // emulator; keep it out of both timed legs so the speedup
        // compares simulation against simulation.
        SimParams fp;
        fp.checkFinalState = false;

        RunRequest fullReq{prog, fp};
        fullReq.cache = RunRequest::CachePolicy::Bypass;
        auto t0 = std::chrono::steady_clock::now();
        RunOutcome full = run(fullReq);
        auto t1 = std::chrono::steady_clock::now();
        wisc_assert(full.result.halted, "full run did not halt");
        const std::uint64_t uops = full.result.retiredUops;

        // The detailed prefix covers the program's cold-start
        // transient: one scale-1 pass of the kernel touches its whole
        // working set, so the functional length of the *unscaled*
        // program (a fast threaded-emulator run) bounds it. Doubled
        // because prefixUops is in the core's *retire* coordinate,
        // which pads the functional stream with nullified µops
        // wherever a wish branch predicates (up to ~60%); a prefix
        // that stops even slightly short of the first-touch boundary
        // leaves a compulsory-miss tail that the windows — warmed
        // with the *complete* first-pass footprint — can never see.
        // Overshooting merely measures some stationary code exactly.
        Program base = programFor(w, BinaryVariant::WishJumpJoinLoop,
                                  InputSet::A);
        FastForward bff(base, fp);
        bff.advanceTo(Emulator::kDefaultMaxSteps);
        wisc_assert(bff.halted(), k, ": unscaled run did not halt");

        // Window geometry scales with the machine and the kernel: the
        // detailed warmup must refill the out-of-order window several
        // times over before measurement starts (a 512-entry ROB at
        // IPC 2 is nowhere near steady state 300 µops in), and the
        // measured region must dwarf one ROB drain. Period is set from
        // the invariant qp-true length so ~32 windows spread across
        // the run instead of falling off its end.
        const std::uint64_t ujt =
            uops - full.require("core.retired_pred_false");
        SimParams sp = fp;
        sp.sampling.enabled = true;
        sp.sampling.warmupUops = 8 * fp.robSize;
        sp.sampling.measureUops = 16 * fp.robSize;
        sp.sampling.periodUops = std::max<std::uint64_t>(
            ujt / 32, sp.sampling.warmupUops + sp.sampling.measureUops);
        sp.sampling.prefixUops = 2 * bff.uops();

        RunRequest sampReq{prog, sp};
        sampReq.cache = RunRequest::CachePolicy::Bypass;
        auto t2 = std::chrono::steady_clock::now();
        RunOutcome samp = run(sampReq);
        auto t3 = std::chrono::steady_clock::now();

        // Architectural results are exact, never estimated. The raw
        // retired-µop count is *not* architectural on this machine
        // (predicated wish branches pad the stream with nullified
        // µops), so exactness is asserted in the execution-invariant
        // coordinate: qp-true retires, final register, final memory.
        wisc_assert(samp.require("sampling.qp_true_uops") == ujt,
                    k, ": sampled qp-true count ",
                    samp.require("sampling.qp_true_uops"),
                    " != full-run ", ujt);
        wisc_assert(samp.result.resultReg == full.result.resultReg,
                    k, ": sampled result register diverged");
        wisc_assert(samp.result.memFingerprint ==
                        full.result.memFingerprint,
                    k, ": sampled memory fingerprint diverged");
        wisc_assert(samp.stats.count("sampling.fallback") == 0,
                    k, ": sampled run fell back to full simulation");

        const double cpiF = static_cast<double>(full.result.cycles) /
                            static_cast<double>(uops);
        const double cpiS = static_cast<double>(samp.result.cycles) /
                            static_cast<double>(uops);
        const double err = std::abs(cpiS - cpiF) / cpiF;
        const double wf = seconds(t0, t1), ws = seconds(t2, t3);

        t.addRow({k, std::to_string(uops), Table::num(cpiF),
                  Table::num(cpiS), Table::num(err * 100.0),
                  std::to_string(samp.require("sampling.windows")),
                  Table::num(wf), Table::num(ws), Table::num(wf / ws)});
        cli.noteSimulated(uops + samp.require("sampling.window_qp_true"),
                          full.result.cycles);

        // Cancellation-free aggregate: |ln ratio|, so an overestimate
        // on one kernel cannot hide an underestimate on another.
        logRatioSum += std::abs(std::log(cpiS / cpiF));
        wallFull += wf;
        wallSamp += ws;
        ++n;
    }
    t.print(std::cout);

    const double geomeanErr =
        std::exp(logRatioSum / static_cast<double>(n)) - 1.0;
    const double speedup = wallFull / wallSamp;
    std::cout << "\nGeomean CPI error: " << Table::num(geomeanErr * 100.0)
              << "%   aggregate speedup: " << Table::num(speedup)
              << "x\n";

    cli.addTable("table", t);
    cli.add("geomean_cpi_error", geomeanErr);
    cli.add("speedup", speedup);
    cli.add("wall_full_s", wallFull);
    cli.add("wall_sampled_s", wallSamp);
    cli.add("smoke", smoke);

#ifdef NDEBUG
    // Acceptance floors, enforced only on optimized full-matrix runs
    // (assert-enabled builds spend most of their time in assertions,
    // and the smoke subset is too small to be statistically stable).
    if (!smoke) {
        if (geomeanErr > 0.02) {
            std::cerr << "sampling_validation: geomean CPI error "
                      << geomeanErr * 100.0 << "% above the 2% floor\n";
            cli.finish();
            return 1;
        }
        if (speedup < 10.0) {
            std::cerr << "sampling_validation: speedup " << speedup
                      << "x below the 10x floor\n";
            cli.finish();
            return 1;
        }
    }
#endif
    return cli.finish();
}

} // namespace
