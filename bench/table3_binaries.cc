/**
 * @file
 * Table 3: the five binary flavors per benchmark — code size and the
 * static population of normal branches, wish jumps, joins, and loops —
 * verifying the compiler implements the described generation rules
 * (predicated code keeps no hammock branches; wish binaries keep them
 * as wish branches; only the jjl binary converts loop branches).
 */

#include <iostream>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace wisc;

int
main()
{
    printBanner(std::cout, "Table 3: compiled binary variants",
                "static instruction and branch composition per variant");

    Table t({"benchmark", "variant", "uops", "cond-br", "wish-jump",
             "wish-join", "wish-loop"});
    for (const std::string &name : workloadNames()) {
        CompiledWorkload w = compileWorkload(name);
        for (BinaryVariant v : kAllVariants) {
            const CompiledBinary &b = w.variants.at(v);
            t.addRow({name, variantName(v),
                      std::to_string(b.program.size()),
                      std::to_string(b.staticCondBranches),
                      std::to_string(b.staticWishJumps),
                      std::to_string(b.staticWishJoins),
                      std::to_string(b.staticWishLoops)});
        }
    }
    t.print(std::cout);
    return 0;
}
