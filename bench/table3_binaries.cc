/**
 * @file
 * Table 3: the five binary flavors per benchmark — code size and the
 * static population of normal branches, wish jumps, joins, and loops —
 * verifying the compiler implements the described generation rules
 * (predicated code keeps no hammock branches; wish binaries keep them
 * as wish branches; only the jjl binary converts loop branches).
 */

#include <iostream>

#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(table3_binaries)

namespace {

int
benchMain(BenchCli &cli)
{
    printBanner(std::cout, "Table 3: compiled binary variants",
                "static instruction and branch composition per variant");

    const std::vector<std::string> &names = workloadNames();
    std::vector<std::vector<std::vector<std::string>>> rows(names.size());
    ParallelRunner &pool = ParallelRunner::shared();
    pool.forEach(names.size(), [&](std::size_t i) {
        const std::string &name = names[i];
        CompiledWorkload w = compileWorkload(name);
        for (BinaryVariant v : kAllVariants) {
            const CompiledBinary &b = w.variants.at(v);
            rows[i].push_back({name, variantName(v),
                               std::to_string(b.program.size()),
                               std::to_string(b.staticCondBranches),
                               std::to_string(b.staticWishJumps),
                               std::to_string(b.staticWishJoins),
                               std::to_string(b.staticWishLoops)});
        }
    });

    Table t({"benchmark", "variant", "uops", "cond-br", "wish-jump",
             "wish-join", "wish-loop"});
    for (auto &bench : rows)
        for (auto &row : bench)
            t.addRow(std::move(row));
    t.print(std::cout);
    cli.addTable("table", t);
    return cli.finish();
}

} // namespace
