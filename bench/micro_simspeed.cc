/**
 * @file
 * Simulator-throughput benchmark: simulated µops per wall-clock second
 * for the cycle-level core, across the three binary types the paper's
 * experiments exercise most (normal branches, BASE-MAX predication,
 * wish jump/join/loop) and the Figure 14 window geometries. Runs are
 * strictly serial and individually timed, so the per-row numbers are
 * unaffected by compile time or other rows.
 *
 * `--smoke` runs a reduced matrix (two kernels, largest window only)
 * with a deliberately generous throughput floor; ctest runs that mode
 * under the `smoke` label to catch order-of-magnitude regressions in
 * the hot path without making the suite timing-sensitive.
 */

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "arch/emulator.hh"
#include "harness/bench_cli.hh"
#include "harness/table.hh"
#include "uarch/core.hh"
#include "workloads/workload.hh"

using namespace wisc;

namespace {

struct VariantSpec
{
    const char *label;
    BinaryVariant variant;
};

const VariantSpec kVariants[] = {
    {"normal", BinaryVariant::Normal},
    {"base-max", BinaryVariant::BaseMax},
    {"wish-jjl", BinaryVariant::WishJumpJoinLoop},
};

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::vector<char *> passArgv;
    passArgv.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke")
            smoke = true;
        else
            passArgv.push_back(argv[i]);
    }
    BenchCli cli(static_cast<int>(passArgv.size()), passArgv.data(),
                 "micro_simspeed");

    printBanner(std::cout, "Simulator throughput",
                smoke ? "simulated Muops per wall second (smoke matrix)"
                      : "simulated Muops per wall second (input A, "
                        "serial, per-run timing)");

    const std::vector<std::string> kernels =
        smoke ? std::vector<std::string>{"gzip", "mcf"} : workloadNames();
    const std::vector<unsigned> windows =
        smoke ? std::vector<unsigned>{512} : std::vector<unsigned>{128, 512};

    // Compile once, untimed: we are measuring the core, not the compiler.
    std::vector<CompiledWorkload> compiled;
    for (const std::string &k : kernels)
        compiled.push_back(compileWorkload(k));

    Table t({"window", "binary", "uops", "cycles", "wall_s", "Muops/s"});
    std::uint64_t totalUops = 0;
    std::uint64_t totalCycles = 0;
    double totalSimSeconds = 0.0;
    double defaultWindowUops = 0.0;
    double defaultWindowSeconds = 0.0;

    for (unsigned rob : windows) {
        SimParams params;
        params.robSize = rob;
        params.iqSize = rob / 4;
        params.lsqSize = rob / 2;

        for (const VariantSpec &vs : kVariants) {
            std::uint64_t uops = 0;
            std::uint64_t cycles = 0;
            double wall = 0.0;
            for (const CompiledWorkload &w : compiled) {
                Program prog = programFor(w, vs.variant, InputSet::A);
                StatSet stats;
                auto t0 = std::chrono::steady_clock::now();
                SimResult r = simulate(prog, params, stats);
                auto t1 = std::chrono::steady_clock::now();
                wisc_assert(r.halted, "benchmark run did not halt");
                uops += r.retiredUops;
                cycles += r.cycles;
                wall += seconds(t0, t1);
            }
            t.addRow({std::to_string(rob), vs.label, std::to_string(uops),
                      std::to_string(cycles), Table::num(wall),
                      Table::num(uops / wall / 1e6)});
            cli.noteSimulated(uops, cycles);
            totalUops += uops;
            totalCycles += cycles;
            totalSimSeconds += wall;
            if (rob == 512) {
                defaultWindowUops += static_cast<double>(uops);
                defaultWindowSeconds += wall;
            }
        }
    }
    t.print(std::cout);

    // Functional-emulator throughput: reference switch dispatch vs the
    // threaded-code engine the sampled-simulation fast-forward runs on.
    // Runs are repeated until each timed cell is long enough to measure;
    // both dispatchers must agree bit-for-bit on every run (the cheap
    // in-bench shadow of the fuzzer's dispatch-differential mode).
    struct DispatchSpec
    {
        const char *label;
        EmuDispatch dispatch;
    };
    const DispatchSpec kDispatch[] = {
        {"switch", EmuDispatch::Switch},
        {"threaded", EmuDispatch::Threaded},
    };
    const unsigned reps = smoke ? 10 : 40;

    Table et({"dispatch", "uops", "wall_s", "Muops/s"});
    double emuRate[2] = {0.0, 0.0};
    for (unsigned d = 0; d < 2; ++d) {
        std::uint64_t uops = 0;
        double wall = 0.0;
        for (const CompiledWorkload &w : compiled) {
            for (const VariantSpec &vs : kVariants) {
                Program prog = programFor(w, vs.variant, InputSet::A);
                Emulator em;
                EmuResult first{};
                auto t0 = std::chrono::steady_clock::now();
                for (unsigned i = 0; i < reps; ++i) {
                    EmuResult r =
                        em.run(prog, nullptr, Emulator::kDefaultMaxSteps,
                               kDispatch[d].dispatch);
                    wisc_assert(r.halted, "emulator run did not halt");
                    if (i == 0)
                        first = r;
                    wisc_assert(r.resultReg == first.resultReg &&
                                    r.memFingerprint == first.memFingerprint,
                                "emulator runs diverged across reps");
                    uops += r.dynInsts;
                }
                auto t1 = std::chrono::steady_clock::now();
                wall += seconds(t0, t1);
            }
        }
        emuRate[d] = static_cast<double>(uops) / wall;
        et.addRow({kDispatch[d].label, std::to_string(uops),
                   Table::num(wall), Table::num(emuRate[d] / 1e6)});
    }
    std::cout << "\nFunctional emulator (" << reps << " reps per cell):\n";
    et.print(std::cout);
    std::cout << "\nThreaded dispatch: "
              << Table::num(emuRate[1] / emuRate[0])
              << "x the switch engine.\n";
    cli.addTable("emulator", et);
    cli.add("emu_switch_uops_per_s", emuRate[0]);
    cli.add("emu_threaded_uops_per_s", emuRate[1]);
    cli.add("emu_threaded_speedup", emuRate[1] / emuRate[0]);

    const double overall =
        static_cast<double>(totalUops) / totalSimSeconds;
    const double atDefault = defaultWindowUops / defaultWindowSeconds;
    std::cout << "\nOverall: " << Table::num(overall / 1e6)
              << " Muops/s (" << Table::num(atDefault / 1e6)
              << " Muops/s at the default 512-entry window).\n";

    cli.addTable("throughput", t);
    cli.add("sim_seconds", totalSimSeconds);
    cli.add("uops_per_sim_second", overall);
    cli.add("uops_per_sim_second_rob512", atDefault);
    cli.add("smoke", smoke);

#ifdef NDEBUG
    // Generous floor: an order of magnitude below the measured optimized
    // throughput, so the smoke test only trips on real hot-path
    // regressions, never on machine noise.
    const double kFloor = 150e3;
    if (overall < kFloor) {
        std::cerr << "micro_simspeed: throughput " << overall
                  << " uops/s below floor " << kFloor << "\n";
        cli.finish();
        return 1;
    }
#endif
    return cli.finish();
}
