/**
 * @file
 * Figure 16: the same comparison as Figure 12 on a machine that
 * supports predication with the select-µop mechanism instead of C-style
 * conditional expressions. Select-µops add µop overhead to predicated
 * code, so the wish-branch advantage over predication *grows*, while
 * the advantage over plain branch prediction shrinks slightly.
 */

#include <iostream>

#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/experiments.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(fig16_select_uop)

namespace {

int
benchMain(BenchCli &cli)
{
    printBanner(std::cout, "Figure 16: select-uop predication mechanism",
                "execution time normalized to the normal-branch binary "
                "on the select-uop machine (input A)");

    SimParams sel;
    sel.predMech = PredMechanism::SelectUop;

    SimParams selPerf = sel;
    selPerf.oracle.perfectConfidence = true;

    std::vector<SeriesSpec> series = {
        {"BASE-DEF", BinaryVariant::BaseDef, sel},
        {"BASE-MAX", BinaryVariant::BaseMax, sel},
        {"wish-jj(real)", BinaryVariant::WishJumpJoin, sel},
        {"wish-jjl(real)", BinaryVariant::WishJumpJoinLoop, sel},
        {"wish-jjl(perf)", BinaryVariant::WishJumpJoinLoop, selPerf},
    };

    NormalizedResults r =
        runNormalizedExperiment(series, InputSet::A, sel);
    printNormalized(std::cout, r);
    std::cout << "\nPaper shape: vs. C-style (Fig 12), predicated "
                 "binaries get relatively slower, wish binaries keep "
                 "most of their advantage.\n";
    cli.addResults("results", r);
    return cli.finish();
}

} // namespace
