#!/usr/bin/env bash
# Produces BENCH_serve.json: full-matrix wall clock standalone vs
# sharded across N wisc-serve client processes (cold and warm cache),
# plus the bit-identity check — the 4-client sharded run must leave a
# cache directory byte-identical to the single-process run's.
#
# Usage: bench/serve_bench.sh [BUILD_DIR [WORK_DIR]]
# Measurements are resumable: each lands in WORK_DIR/<name>.secs and is
# skipped when present, so an interrupted run picks up where it left
# off. The final document is written to BENCH_serve.json in the
# repo root (next to this script's parent).
set -euo pipefail

BUILD=${1:-build}
WORK=${2:-/tmp/wisc_serve_bench}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
RUN_MATRIX=$ROOT/$BUILD/bench/run_matrix
export WISC_SERVE_BIN=$ROOT/$BUILD/src/serve/wisc-serve
mkdir -p "$WORK"

CLIENT_COUNTS=(1 2 4)

wall() { # wall <name> <cmd...>: time a command, cache the result
    local name=$1; shift
    if [ -f "$WORK/$name.secs" ]; then
        echo "  $name: $(cat "$WORK/$name.secs")s (cached)"
        return
    fi
    local t0 t1
    t0=$(date +%s.%N)
    "$@" > "$WORK/$name.log" 2>&1
    t1=$(date +%s.%N)
    awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }' \
        > "$WORK/$name.secs"
    echo "  $name: $(cat "$WORK/$name.secs")s"
}

shard_clients() { # shard_clients <name> <nclients> <cachedir>
    local name=$1 n=$2 cache=$3
    local sock="$WORK/$name.sock"
    "$WISC_SERVE_BIN" --socket "$sock" --cache "$cache" \
        > "$WORK/$name.daemon.log" 2>&1 &
    local daemon=$!
    for _ in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.1; done
    local pids=()
    for i in $(seq 1 "$n"); do
        "$RUN_MATRIX" --serve "$sock" --shard "$i/$n" \
            --json "$WORK/$name.client$i.json" \
            > "$WORK/$name.client$i.log" 2>&1 &
        pids+=($!)
    done
    local rc=0
    for pid in "${pids[@]}"; do wait "$pid" || rc=$?; done
    kill -TERM "$daemon" 2>/dev/null || true
    wait "$daemon" 2>/dev/null || true
    return "$rc"
}

echo "== standalone run_matrix (one process, local cache) =="
[ -f "$WORK/standalone_cold.secs" ] || rm -rf "$WORK/cache_local"
wall standalone_cold \
    "$RUN_MATRIX" --cache "$WORK/cache_local" \
    --json "$WORK/standalone_cold.json"
wall standalone_warm \
    "$RUN_MATRIX" --cache "$WORK/cache_local" \
    --json "$WORK/standalone_warm.json"

for n in "${CLIENT_COUNTS[@]}"; do
    echo "== wisc-serve, $n client process(es) sharding the matrix =="
    [ -f "$WORK/serve${n}_cold.secs" ] || rm -rf "$WORK/cache_serve$n"
    wall "serve${n}_cold" shard_clients "serve${n}_cold" "$n" \
        "$WORK/cache_serve$n"
    wall "serve${n}_warm" shard_clients "serve${n}_warm" "$n" \
        "$WORK/cache_serve$n"
done

echo "== bit-identity: 4-client sharded cache vs single-process =="
if diff -r "$WORK/cache_local" "$WORK/cache_serve4" > /dev/null; then
    identical=true
    echo "  identical ($(ls "$WORK/cache_local" | wc -l) entries)"
else
    identical=false
    echo "  MISMATCH" >&2
fi

coalesced=$(grep -h '"coalesced"' "$WORK"/serve4_cold.client*.json |
    grep -o '[0-9]*' | sort -n | tail -1)
entries=$(ls "$WORK/cache_local" | wc -l | tr -d ' ')

{
    echo '{'
    echo '  "bench": "serve_shard_timing",'
    echo '  "schema_version": 1,'
    echo '  "description": "Full experiment matrix wall clock: one run_matrix process with a local cache vs N run_matrix client processes sharding the matrix across one wisc-serve daemon (one shared pool, one shared persistent cache, cross-client request coalescing). Cold = empty cache dir, warm = rerun against the populated cache. The 4-client sharded run leaves a cache directory byte-identical to the single-process run.",'
    echo "  \"distinct_simulations\": $entries,"
    echo "  \"standalone\": { \"cold_wall_seconds\": $(cat "$WORK/standalone_cold.secs"), \"warm_wall_seconds\": $(cat "$WORK/standalone_warm.secs") },"
    echo '  "serve": {'
    sep=''
    for n in "${CLIENT_COUNTS[@]}"; do
        printf '%s    "%s_clients": { "cold_wall_seconds": %s, "warm_wall_seconds": %s }' \
            "$sep" "$n" "$(cat "$WORK/serve${n}_cold.secs")" \
            "$(cat "$WORK/serve${n}_warm.secs")"
        sep=',
'
    done
    echo ''
    echo '  },'
    echo "  \"serve4_cold_max_coalesced\": ${coalesced:-0},"
    echo "  \"shard4_cache_bit_identical_to_standalone\": $identical"
    echo '}'
} > "$ROOT/BENCH_serve.json"
echo "wrote $ROOT/BENCH_serve.json"
