/**
 * @file
 * Predictor × variant sweep: do wish branches still win under TAGE?
 *
 * The paper's evaluation (and the Table-3/Figure-12 reproductions in
 * this repo) fixes one front end: the McFarling hybrid with a JRS
 * confidence estimator. Wish branches' whole value proposition rests on
 * that front end being imperfect — a wish jump pays its predication tax
 * only on branches confidence flags as likely-wrong. A stronger
 * predictor shrinks the pool of mispredicted branches (less for wish
 * branches to save); a weaker one grows it. This sweep runs every
 * Table-3 binary variant on every benchmark under the whole predictor
 * zoo (hybrid, bimodal, two-level, TAGE) × confidence estimator (JRS,
 * up/down, TAGE's free provider-based estimate) and reports, per cell,
 * IPC, mispredictions per 1k retired µops, and the attrib.* CPI stack.
 *
 * The headline table gives the wish-jump/join/loop speedup over the
 * normal binary per predictor front end: if its geomean stays above
 * 1.0x in the TAGE columns, adaptive predication still pays when the
 * predictor is a generation better than the paper's.
 *
 * Under run_matrix --smoke (WISC_SMOKE=1) the sweep drops to three
 * benchmarks × three front ends × {normal, wish-jjl}, enough to keep
 * every factory path hot in CI without simulating all 270 cells.
 */

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(predictor_sweep)

namespace {

/** One front-end point: a branch predictor plus confidence estimator. */
struct FrontEnd
{
    const char *label;
    PredictorKind predictor;
    ConfKind conf;
};

const FrontEnd kFrontEnds[] = {
    {"hybrid+jrs", PredictorKind::Hybrid, ConfKind::Jrs},
    {"bimodal+jrs", PredictorKind::Bimodal, ConfKind::Jrs},
    {"twolevel+jrs", PredictorKind::TwoLevel, ConfKind::Jrs},
    {"tage+jrs", PredictorKind::Tage, ConfKind::Jrs},
    {"tage+tageconf", PredictorKind::Tage, ConfKind::Tage},
    {"tage+updown", PredictorKind::Tage, ConfKind::UpDown},
};

/** The smoke schedule keeps one classic, one TAGE-with-JRS and the
 *  TAGE-native-confidence point, so both factories and the dynamic_cast
 *  wiring stay covered. */
const char *const kSmokeFrontEnds[] = {"hybrid+jrs", "tage+jrs",
                                       "tage+tageconf"};

struct Cell
{
    std::size_t fe;
    BinaryVariant variant;
    std::size_t bench;
    RunOutcome out;
};

double
geomean(const std::vector<double> &xs)
{
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return xs.empty() ? 0.0 : std::exp(acc / xs.size());
}

int
benchMain(BenchCli &cli)
{
    const bool smoke = std::getenv("WISC_SMOKE") != nullptr;
    printBanner(std::cout,
                "Predictor x variant sweep: wish branches under a "
                "stronger (and weaker) front end",
                smoke ? "smoke schedule; input A"
                      : "all Table-3 variants, all benchmarks, input A");

    std::vector<FrontEnd> fes;
    if (smoke) {
        for (const FrontEnd &fe : kFrontEnds)
            for (const char *want : kSmokeFrontEnds)
                if (std::string(fe.label) == want)
                    fes.push_back(fe);
    } else {
        fes.assign(std::begin(kFrontEnds), std::end(kFrontEnds));
    }

    std::vector<BinaryVariant> variants;
    if (smoke)
        variants = {BinaryVariant::Normal,
                    BinaryVariant::WishJumpJoinLoop};
    else
        variants.assign(std::begin(kAllVariants),
                        std::end(kAllVariants));

    std::vector<std::string> benches = workloadNames();
    if (smoke)
        benches.resize(3);

    // Compile each benchmark once; every cell shares the binaries.
    std::vector<CompiledWorkload> workloads(benches.size());
    ParallelRunner &pool = ParallelRunner::shared();
    pool.forEach(benches.size(), [&](std::size_t i) {
        workloads[i] = compileWorkload(benches[i]);
    });

    std::vector<Cell> cells;
    for (std::size_t f = 0; f < fes.size(); ++f)
        for (BinaryVariant v : variants)
            for (std::size_t b = 0; b < benches.size(); ++b)
                cells.push_back(Cell{f, v, b, {}});

    pool.forEach(cells.size(), [&](std::size_t i) {
        Cell &c = cells[i];
        SimParams p;
        p.predictor = fes[c.fe].predictor;
        p.confKind = fes[c.fe].conf;
        p.collectAttribution = true;
        c.out = run(RunRequest{workloads[c.bench], c.variant,
                               InputSet::A, p});
    });

    // Index for the summary tables: cycles[fe][variant][bench].
    std::map<std::string, std::uint64_t> cycles;
    auto key = [&](std::size_t f, BinaryVariant v, std::size_t b) {
        return std::string(fes[f].label) + "/" + variantName(v) + "/" +
               benches[b];
    };
    json::Value jcells = json::Value::array();
    for (const Cell &c : cells) {
        cli.noteSimulated(c.out.result.retiredUops,
                          c.out.result.cycles);
        cycles[key(c.fe, c.variant, c.bench)] = c.out.result.cycles;

        json::Value jc = json::Value::object();
        jc["predictor"] = fes[c.fe].label;
        jc["variant"] = variantName(c.variant);
        jc["benchmark"] = benches[c.bench];
        jc["cycles"] = c.out.result.cycles;
        jc["retired_uops"] = c.out.result.retiredUops;
        jc["ipc"] = c.out.result.cycles
                        ? static_cast<double>(c.out.result.retiredUops) /
                              static_cast<double>(c.out.result.cycles)
                        : 0.0;
        jc["mispredicts_per_1k_uops"] = c.out.mispredictsPer1K();
        json::Value attrib = json::Value::object();
        for (const auto &st : c.out.stats)
            if (st.first.rfind("attrib.", 0) == 0)
                attrib[st.first.substr(7)] = st.second;
        jc["attrib"] = std::move(attrib);
        jcells.push(std::move(jc));
    }

    // Headline: wish-jump/join/loop speedup over the normal binary,
    // per front end.
    const BinaryVariant best = BinaryVariant::WishJumpJoinLoop;
    std::vector<std::string> header = {"benchmark"};
    for (const FrontEnd &fe : fes)
        header.push_back(fe.label);
    Table speedups(header);
    json::Value jspeed = json::Value::object();
    std::vector<std::vector<double>> perFe(fes.size());
    for (std::size_t b = 0; b < benches.size(); ++b) {
        std::vector<std::string> row = {benches[b]};
        for (std::size_t f = 0; f < fes.size(); ++f) {
            const double s =
                static_cast<double>(
                    cycles[key(f, BinaryVariant::Normal, b)]) /
                static_cast<double>(cycles[key(f, best, b)]);
            perFe[f].push_back(s);
            row.push_back(Table::num(s, 3) + "x");
            jspeed[std::string(fes[f].label) + "/" + benches[b]] = s;
        }
        speedups.addRow(std::move(row));
    }
    std::vector<std::string> gmRow = {"geomean"};
    json::Value jgm = json::Value::object();
    for (std::size_t f = 0; f < fes.size(); ++f) {
        const double g = geomean(perFe[f]);
        gmRow.push_back(Table::num(g, 3) + "x");
        jgm[fes[f].label] = g;
    }
    speedups.addRow(std::move(gmRow));
    std::cout << "wish-jump/join/loop speedup over the normal binary\n";
    speedups.print(std::cout);

    // Context: how much each front end actually mispredicts on the
    // normal binary — the head-room wish branches can convert.
    Table rates(header);
    for (std::size_t b = 0; b < benches.size(); ++b) {
        std::vector<std::string> row = {benches[b]};
        for (std::size_t f = 0; f < fes.size(); ++f) {
            for (const Cell &c : cells)
                if (c.fe == f && c.bench == b &&
                    c.variant == BinaryVariant::Normal)
                    row.push_back(
                        Table::num(c.out.mispredictsPer1K(), 2));
        }
        rates.addRow(std::move(row));
    }
    std::cout << "\nmispredicts per 1k retired uops, normal binary\n";
    rates.print(std::cout);

    bool tageStillWins = true;
    for (std::size_t f = 0; f < fes.size(); ++f)
        if (fes[f].predictor == PredictorKind::Tage &&
            geomean(perFe[f]) <= 1.0)
            tageStillWins = false;
    std::cout << "\nUnder TAGE front ends, wish branches "
              << (tageStillWins ? "still win on geomean."
                                : "no longer pay on geomean.")
              << "\n";

    cli.addTable("speedup_table", speedups);
    cli.addTable("mispredict_table", rates);
    cli.add("cells", std::move(jcells));
    cli.add("speedup_vs_normal", std::move(jspeed));
    cli.add("speedup_geomean", std::move(jgm));
    cli.add("wish_wins_under_tage", json::Value(tageStillWins));
    cli.add("smoke", json::Value(smoke));
    cli.add("cell_count",
            json::Value(static_cast<std::uint64_t>(cells.size())));
    return cli.finish();
}

} // namespace
