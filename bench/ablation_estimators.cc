/**
 * @file
 * Extension study (paper §7: "more accurate confidence estimation
 * mechanisms are also interesting to investigate"): the Table-2 JRS
 * estimator vs. a per-PC up/down *rate* estimator vs. perfect
 * confidence, on the wish jump/join/loop binaries. The up/down counter
 * tolerates rare-but-regular mispredictions (mcf's profile) that reset
 * a JRS streak counter.
 */

#include <iostream>

#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/experiments.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(ablation_estimators)

namespace {

int
benchMain(BenchCli &cli)
{
    printBanner(std::cout, "Extension: confidence estimator comparison",
                "wish-jjl execution time normalized to the normal binary "
                "(input A)");

    SimParams jrs; // default

    SimParams updown;
    updown.confKind = ConfKind::UpDown;

    SimParams perfect;
    perfect.oracle.perfectConfidence = true;

    std::vector<SeriesSpec> series = {
        {"JRS", BinaryVariant::WishJumpJoinLoop, jrs},
        {"up/down", BinaryVariant::WishJumpJoinLoop, updown},
        {"perfect", BinaryVariant::WishJumpJoinLoop, perfect},
    };

    NormalizedResults r = runNormalizedExperiment(series, InputSet::A);
    printNormalized(std::cout, r);
    std::cout << "\nThe gap between each real estimator and the perfect "
                 "column is the §5.1 'better confidence estimator' "
                 "headroom (paper: 14.2% -> 16.2%).\n";
    cli.addResults("results", r);
    return cli.finish();
}

} // namespace
