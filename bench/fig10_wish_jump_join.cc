/**
 * @file
 * Figure 10: performance of wish jump/join binaries against the two
 * predicated baselines, with the real JRS confidence estimator and with
 * a perfect one.
 */

#include <iostream>

#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/experiments.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(fig10_wish_jump_join)

namespace {

int
benchMain(BenchCli &cli)
{
    printBanner(std::cout, "Figure 10: wish jump/join binaries",
                "execution time normalized to the normal-branch binary "
                "(input A)");

    SimParams perfConf;
    perfConf.oracle.perfectConfidence = true;

    std::vector<SeriesSpec> series = {
        {"BASE-DEF", BinaryVariant::BaseDef, SimParams{}},
        {"BASE-MAX", BinaryVariant::BaseMax, SimParams{}},
        {"wish-jj(real)", BinaryVariant::WishJumpJoin, SimParams{}},
        {"wish-jj(perf)", BinaryVariant::WishJumpJoin, perfConf},
    };

    NormalizedResults r = runNormalizedExperiment(series, InputSet::A);
    printNormalized(std::cout, r);
    std::cout << "\nPaper shape: wish jump/join beats the normal binary "
                 "everywhere except mcf-like cases, recovers BASE-MAX's "
                 "mcf blowup, and perfect confidence only helps.\n";
    cli.addResults("results", r);
    return cli.finish();
}

} // namespace
