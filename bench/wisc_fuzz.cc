/**
 * @file
 * Differential fuzzing CLI. Generates seeded random programs, compiles
 * all five Table-3 binary variants, and cross-checks the functional
 * emulator against itself (full architectural state across variants),
 * its threaded computed-goto dispatch against the reference switch
 * interpreter (every architectural bit, on every variant), and the
 * cycle-accurate core over a SimParams matrix, including the
 * attribution-sum and poll-vs-event-scheduler invariants. Failures are
 * shrunk and written as self-contained reproducer files.
 *
 * Usage:
 *   wisc_fuzz [--seed N] [--runs N] [--matrix smoke|full] [--emu-only]
 *             [--no-dispatch] [--no-shrink] [--repro-dir DIR]
 *             [--replay FILE] [--json PATH]
 *
 * --replay FILE re-checks a reproducer written by an earlier campaign
 * (or checked in under tests/fuzz_regressions/): exit 0 when the tree
 * no longer exhibits the failure, 2 when it still reproduces.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/fuzzer.hh"
#include "harness/bench_cli.hh"
#include "harness/table.hh"

using namespace wisc;

namespace {

int
usage(std::ostream &os, const char *argv0, int code)
{
    os << "usage: " << argv0
       << " [--seed N] [--runs N] [--matrix smoke|full]"
          " [--stress] [--emu-only] [--no-dispatch] [--no-shrink]"
          " [--repro-dir DIR] [--replay FILE] [--json PATH]\n";
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    FuzzOptions opts;
    std::string replayPath;
    std::string matrixName = "smoke";

    // Pre-filter fuzzer flags; everything else (--json, ...) goes to
    // BenchCli, which exits with usage on anything it does not know.
    std::vector<char *> passArgv;
    passArgv.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--seed")
            opts.seed = std::strtoull(value("--seed"), nullptr, 0);
        else if (a == "--runs")
            opts.runs = static_cast<unsigned>(
                std::strtoul(value("--runs"), nullptr, 0));
        else if (a == "--matrix")
            matrixName = value("--matrix");
        else if (a == "--emu-only")
            opts.runCore = false;
        else if (a == "--no-dispatch")
            opts.checkDispatch = false;
        else if (a == "--stress") {
            // Harsher shapes: deeper nesting, more regions (close to —
            // and past — the fresh-guard pool), more loops straddling
            // the wish-loop body limit.
            opts.gen.hammockBudget = 8;
            opts.gen.loopBudget = 5;
            opts.gen.stmtsPerBody = 8;
            opts.gen.bigLoopBodyChance = 0.4;
            opts.gen.emptyArmChance = 0.3;
        }
        else if (a == "--no-shrink")
            opts.shrink = false;
        else if (a == "--repro-dir")
            opts.reproDir = value("--repro-dir");
        else if (a == "--replay")
            replayPath = value("--replay");
        else if (a == "--help" || a == "-h")
            return usage(std::cout, argv[0], 0);
        else
            passArgv.push_back(argv[i]);
    }
    if (matrixName == "smoke")
        opts.matrix = defaultParamsMatrix(true);
    else if (matrixName == "full")
        opts.matrix = defaultParamsMatrix(false);
    else {
        std::cerr << "--matrix must be 'smoke' or 'full', got '"
                  << matrixName << "'\n";
        return 2;
    }

    BenchCli cli(static_cast<int>(passArgv.size()), passArgv.data(),
                 "wisc_fuzz");

    if (!replayPath.empty()) {
        std::ifstream in(replayPath);
        if (!in) {
            std::cerr << "wisc_fuzz: cannot open " << replayPath << "\n";
            return 2;
        }
        std::ostringstream body;
        body << in.rdbuf();
        CheckOutcome c = replayReproducer(body.str(), opts);
        cli.add("replay_file", replayPath);
        cli.add("replay_ok", c.ok);
        if (c.ok) {
            std::cout << "wisc_fuzz: " << replayPath
                      << (c.compileReject
                              ? ": compile-rejected (fresh-guard pool)"
                              : ": no longer reproduces")
                      << "\n";
            cli.finish();
            return 0;
        }
        std::cout << "wisc_fuzz: " << replayPath
                  << " still fails [" << c.kind << "] " << c.detail
                  << "\n";
        cli.add("replay_kind", c.kind);
        cli.add("replay_detail", c.detail);
        cli.finish();
        return 2;
    }

    printBanner(std::cout, "Differential fuzzer",
                detail::format("seed ", opts.seed, ", ", opts.runs,
                               " programs, ", matrixName, " matrix (",
                               opts.matrix.size(), " machine points)",
                               opts.runCore ? "" : ", emulator only"));

    FuzzReport rep = fuzzCampaign(opts, &std::cout);

    Table t({"metric", "value"});
    t.addRow({"programs", std::to_string(rep.programs)});
    t.addRow({"variant emulations", std::to_string(rep.variantsChecked)});
    t.addRow({"dispatch cross-checks", std::to_string(rep.dispatchChecked)});
    t.addRow({"core simulations", std::to_string(rep.coreRuns)});
    t.addRow({"compile rejects", std::to_string(rep.compileRejects)});
    t.addRow({"failures", std::to_string(rep.failures.size())});
    t.print(std::cout);

    cli.add("seed", opts.seed);
    cli.add("runs", opts.runs);
    cli.add("matrix", matrixName);
    cli.add("programs", rep.programs);
    cli.add("variants_checked", rep.variantsChecked);
    cli.add("dispatch_checked", rep.dispatchChecked);
    cli.add("core_runs", rep.coreRuns);
    cli.add("compile_rejects", rep.compileRejects);
    cli.add("failure_count",
            static_cast<std::uint64_t>(rep.failures.size()));
    {
        json::Value arr = json::Value::array();
        for (const FuzzFailure &f : rep.failures) {
            json::Value o = json::Value::object();
            o["seed"] = f.seed;
            o["kind"] = f.kind;
            o["detail"] = f.detail;
            o["repro_path"] = f.reproPath;
            arr.push(std::move(o));
        }
        cli.add("failures", std::move(arr));
    }

    if (!rep.ok()) {
        std::cout << "\nwisc_fuzz: " << rep.failures.size()
                  << " failure(s); reproducers "
                  << (opts.reproDir.empty() ? "not written (no --repro-dir)"
                                            : "in " + opts.reproDir)
                  << "\n";
        cli.finish();
        return 1;
    }
    std::cout << "\nwisc_fuzz: all " << rep.programs
              << " programs equivalent across variants and engines.\n";
    return cli.finish();
}
