/**
 * @file
 * run_matrix: the whole evaluation in one process.
 *
 * Runs every figure/table/ablation experiment of the paper's matrix
 * back-to-back inside a single process, sharing one ParallelRunner pool
 * and one RunService. Because every experiment's simulations flow
 * through the same content-addressed run cache, the (Program,
 * SimParams) pairs the standalone binaries re-simulate over and over —
 * the normal-binary baseline alone is re-run by fig01/02/10/12/13,
 * table4/5, and every ablation — execute exactly once here, and with
 * `--cache DIR` a second invocation replays the entire matrix from
 * disk.
 *
 * Output: each experiment prints its paper-style table to stdout as
 * usual, and `--json PATH` writes one consolidated document with every
 * experiment's section plus per-experiment and whole-matrix wall times
 * and cache counters:
 *
 *   { "bench": "run_matrix", ..., "experiments": [ <per-bench docs> ],
 *     "experiment_wall_seconds": {name: t, ...},
 *     "cache_hits": H, "cache_misses": M, "dedup_hits": D }
 *
 * `--smoke` runs a reduced schedule as a ctest smoke target; `--only
 * a,b,c` selects experiments by name.
 */

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"

using namespace wisc;

namespace {

/** Every experiment, cheap structural checks first so a broken build
 *  fails fast. This is the schedule; the registry is the phone book. */
const char *const kMatrix[] = {
    "table3_binaries",
    "table4_benchmarks",
    "fig01_input_dependence",
    "fig02_overhead_breakdown",
    "fig02_attribution",
    "fig10_wish_jump_join",
    "fig11_wish_jump_stats",
    "fig12_wish_loops",
    "fig13_wish_loop_stats",
    "fig14_window_sweep",
    "fig15_depth_sweep",
    "fig16_select_uop",
    "table5_best_binary",
    "ablation_confidence",
    "ablation_estimators",
    "ablation_heuristics",
    "ablation_loop_bias",
    "predictor_sweep",
    "sampling_validation",
};

/** Reduced schedule for CI: exercises the registry, the shared pool,
 *  and cross-experiment dedup (fig13's runs coalesce with fig11's
 *  baseline and table4's wish runs) in a few seconds. */
const char *const kSmoke[] = {
    "table3_binaries",
    "fig11_wish_jump_stats",
    "fig13_wish_loop_stats",
    "predictor_sweep",
    "sampling_validation",
};

int
usage(int code)
{
    std::cout <<
        "usage: run_matrix [--smoke] [--only NAME[,NAME...]] [--list]\n"
        "                  [--json PATH] [--cache DIR | --no-cache]\n"
        "\n"
        "Runs the full figure/table/ablation matrix in one process with\n"
        "a shared simulation-result cache, so identical runs across\n"
        "experiments execute once.\n"
        "\n"
        "  --smoke       reduced schedule (ctest smoke target)\n"
        "  --only CSV    run only the named experiments, in matrix order\n"
        "  --list        print the schedule and exit\n"
        "  --json PATH   write one consolidated JSON document\n"
        "  --cache DIR   persistent run cache (WISC_CACHE_DIR fallback);\n"
        "                a second run replays the matrix from disk\n"
        "  --no-cache    ignore WISC_CACHE_DIR / compiled-in default\n";
    return code;
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::vector<std::string> only;
    std::vector<char *> passArgv = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--smoke") {
            smoke = true;
        } else if (a == "--only") {
            if (i + 1 >= argc) {
                std::cerr << "run_matrix: --only requires names\n";
                return 2;
            }
            only = splitCsv(argv[++i]);
        } else if (a == "--list") {
            for (const char *name : kMatrix)
                std::cout << name << "\n";
            return 0;
        } else if (a == "--help" || a == "-h") {
            return usage(0);
        } else {
            passArgv.push_back(argv[i]);
        }
    }

    // Experiments with an internal smoke reduction (predictor_sweep)
    // key off this; flags do not flow through the registry interface.
    if (smoke)
        setenv("WISC_SMOKE", "1", 1);

    // The top-level CLI owns the consolidated document, the matrix-wide
    // timer, and the cache configuration (--json/--cache/--no-cache).
    BenchCli cli(static_cast<int>(passArgv.size()), passArgv.data(),
                 "run_matrix");

    std::vector<std::string> schedule;
    if (!only.empty()) {
        for (const char *name : kMatrix)
            for (const std::string &o : only)
                if (o == name)
                    schedule.push_back(name);
        if (schedule.size() != only.size()) {
            std::cerr << "run_matrix: unknown experiment in --only "
                         "(see --list)\n";
            return 2;
        }
    } else if (smoke) {
        schedule.assign(std::begin(kSmoke), std::end(kSmoke));
    } else {
        schedule.assign(std::begin(kMatrix), std::end(kMatrix));
    }

    json::Value experiments = json::Value::array();
    json::Value wallByExperiment = json::Value::object();
    int firstFailure = 0;
    for (const std::string &name : schedule) {
        BenchFn fn = findBench(name);
        if (!fn)
            wisc_fatal("experiment '", name,
                       "' is not linked into run_matrix");

        BenchCli sub(name); // embedded: document only, no file
        int rc = fn(sub);
        if (rc != 0 && firstFailure == 0)
            firstFailure = rc;

        cli.noteSimulated(sub.simulatedUops(), sub.simulatedCycles());
        wallByExperiment[name] = sub.elapsedSeconds();
        experiments.push(sub.document());
        std::cout << "\n";
    }

    const RunCacheStats totals = RunService::global().stats();
    std::cout << "matrix: " << schedule.size() << " experiments, "
              << totals.misses << " simulations, " << totals.dedupHits
              << " dedup hits, " << totals.diskHits << " disk hits in "
              << Table::num(cli.elapsedSeconds(), 1) << "s\n";

    cli.add("experiment_count",
            json::Value(static_cast<std::uint64_t>(schedule.size())));
    cli.add("smoke", json::Value(smoke));
    cli.add("experiments", std::move(experiments));
    cli.add("experiment_wall_seconds", std::move(wallByExperiment));

    int rc = cli.finish();
    return firstFailure ? firstFailure : rc;
}
