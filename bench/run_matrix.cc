/**
 * @file
 * run_matrix: the whole evaluation in one process.
 *
 * Runs every figure/table/ablation experiment of the paper's matrix
 * back-to-back inside a single process, sharing one ParallelRunner pool
 * and one RunService. Because every experiment's simulations flow
 * through the same content-addressed run cache, the (Program,
 * SimParams) pairs the standalone binaries re-simulate over and over —
 * the normal-binary baseline alone is re-run by fig01/02/10/12/13,
 * table4/5, and every ablation — execute exactly once here, and with
 * `--cache DIR` a second invocation replays the entire matrix from
 * disk.
 *
 * Output: each experiment prints its paper-style table to stdout as
 * usual, and `--json PATH` writes one consolidated document with every
 * experiment's section plus per-experiment and whole-matrix wall times
 * and cache counters:
 *
 *   { "bench": "run_matrix", ..., "experiments": [ <per-bench docs> ],
 *     "experiment_wall_seconds": {name: t, ...},
 *     "cache_hits": H, "cache_misses": M, "dedup_hits": D }
 *
 * `--smoke` runs a reduced schedule as a ctest smoke target; `--only
 * a,b,c` selects experiments by name.
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "serve/client.hh"

using namespace wisc;

namespace {

/** Every experiment, cheap structural checks first so a broken build
 *  fails fast. This is the schedule; the registry is the phone book. */
const char *const kMatrix[] = {
    "table3_binaries",
    "table4_benchmarks",
    "fig01_input_dependence",
    "fig02_overhead_breakdown",
    "fig02_attribution",
    "fig10_wish_jump_join",
    "fig11_wish_jump_stats",
    "fig12_wish_loops",
    "fig13_wish_loop_stats",
    "fig14_window_sweep",
    "fig15_depth_sweep",
    "fig16_select_uop",
    "table5_best_binary",
    "ablation_confidence",
    "ablation_estimators",
    "ablation_heuristics",
    "ablation_loop_bias",
    "predictor_sweep",
    "dynpred_sweep",
    "sampling_validation",
};

/** Reduced schedule for CI: exercises the registry, the shared pool,
 *  and cross-experiment dedup (fig13's runs coalesce with fig11's
 *  baseline and table4's wish runs) in a few seconds. */
const char *const kSmoke[] = {
    "table3_binaries",
    "fig11_wish_jump_stats",
    "fig13_wish_loop_stats",
    "predictor_sweep",
    "dynpred_sweep",
    "sampling_validation",
};

int
usage(int code)
{
    std::cout <<
        "usage: run_matrix [--smoke] [--only NAME[,NAME...]] [--list]\n"
        "                  [--json PATH] [--cache DIR | --no-cache]\n"
        "                  [--serve ADDR] [--shard I/N]\n"
        "\n"
        "Runs the full figure/table/ablation matrix in one process with\n"
        "a shared simulation-result cache, so identical runs across\n"
        "experiments execute once.\n"
        "\n"
        "  --smoke       reduced schedule (ctest smoke target)\n"
        "  --only CSV    run only the named experiments, in matrix order\n"
        "  --list        print the schedule and exit\n"
        "  --json PATH   write one consolidated JSON document\n"
        "  --cache DIR   persistent run cache (WISC_CACHE_DIR fallback);\n"
        "                a second run replays the matrix from disk\n"
        "  --no-cache    ignore WISC_CACHE_DIR / compiled-in default\n"
        "  --serve ADDR  client mode: execute every simulation on the\n"
        "                wisc-serve daemon at unix socket ADDR; `auto`\n"
        "                spawns a private daemon and tears it down at\n"
        "                exit. Identical requests from concurrent\n"
        "                clients coalesce daemon-side.\n"
        "  --shard I/N   run only every Nth experiment starting at the\n"
        "                Ith (1-based); combine with --serve to split\n"
        "                the matrix across client processes\n";
    return code;
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::vector<std::string> only;
    std::string serveAddr;
    unsigned shardIndex = 1, shardCount = 1;
    std::vector<char *> passArgv = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--smoke") {
            smoke = true;
        } else if (a == "--only") {
            if (i + 1 >= argc) {
                std::cerr << "run_matrix: --only requires names\n";
                return 2;
            }
            only = splitCsv(argv[++i]);
        } else if (a == "--serve") {
            if (i + 1 >= argc) {
                std::cerr << "run_matrix: --serve requires an address "
                             "(socket path or `auto`)\n";
                return 2;
            }
            serveAddr = argv[++i];
        } else if (a == "--shard") {
            if (i + 1 >= argc ||
                std::sscanf(argv[i + 1], "%u/%u", &shardIndex,
                            &shardCount) != 2 ||
                shardCount == 0 || shardIndex == 0 ||
                shardIndex > shardCount) {
                std::cerr << "run_matrix: --shard wants I/N with "
                             "1 <= I <= N\n";
                return 2;
            }
            ++i;
        } else if (a == "--list") {
            for (const char *name : kMatrix)
                std::cout << name << "\n";
            return 0;
        } else if (a == "--help" || a == "-h") {
            return usage(0);
        } else {
            passArgv.push_back(argv[i]);
        }
    }

    // Experiments with an internal smoke reduction (predictor_sweep)
    // key off this; flags do not flow through the registry interface.
    if (smoke)
        setenv("WISC_SMOKE", "1", 1);

    // The top-level CLI owns the consolidated document, the matrix-wide
    // timer, and the cache configuration (--json/--cache/--no-cache).
    BenchCli cli(static_cast<int>(passArgv.size()), passArgv.data(),
                 "run_matrix");

    std::vector<std::string> schedule;
    if (!only.empty()) {
        for (const char *name : kMatrix)
            for (const std::string &o : only)
                if (o == name)
                    schedule.push_back(name);
        if (schedule.size() != only.size()) {
            std::cerr << "run_matrix: unknown experiment in --only "
                         "(see --list)\n";
            return 2;
        }
    } else if (smoke) {
        schedule.assign(std::begin(kSmoke), std::end(kSmoke));
    } else {
        schedule.assign(std::begin(kMatrix), std::end(kMatrix));
    }

    if (shardCount > 1) {
        std::vector<std::string> mine;
        for (std::size_t j = shardIndex - 1; j < schedule.size();
             j += shardCount)
            mine.push_back(schedule[j]);
        schedule = std::move(mine);
        std::cout << "shard " << shardIndex << "/" << shardCount << ": "
                  << schedule.size() << " experiments\n";
    }

    // Client mode: every cacheable simulation executes on the daemon's
    // shared pool/cache instead of locally. `auto` spawns a private
    // daemon (the smoke test's spawn/teardown path); a socket path
    // joins a daemon other shards share.
    int servePid = -1;
    std::string serveSocket = serveAddr;
    try {
        if (serveAddr == "auto") {
            serveSocket =
                "/tmp/wisc-serve-" + std::to_string(::getpid()) +
                ".sock";
            std::vector<std::string> extra;
            if (cli.output().noCache)
                extra = {"--cache", ""}; // override WISC_CACHE_DIR env
            servePid = serve::spawnServeDaemon(
                serveSocket, cli.output().cacheDir, extra);
        }
        if (!serveSocket.empty())
            serve::installServeTransport(serveSocket);
    } catch (const FatalError &e) {
        std::cerr << "run_matrix: " << e.what() << "\n";
        return 1;
    }

    json::Value experiments = json::Value::array();
    json::Value wallByExperiment = json::Value::object();
    int firstFailure = 0;
    for (const std::string &name : schedule) {
        BenchFn fn = findBench(name);
        if (!fn)
            wisc_fatal("experiment '", name,
                       "' is not linked into run_matrix");

        BenchCli sub(name); // embedded: document only, no file
        int rc = fn(sub);
        if (rc != 0 && firstFailure == 0)
            firstFailure = rc;

        cli.noteSimulated(sub.simulatedUops(), sub.simulatedCycles());
        wallByExperiment[name] = sub.elapsedSeconds();
        experiments.push(sub.document());
        std::cout << "\n";
    }

    const RunCacheStats totals = RunService::global().stats();
    std::cout << "matrix: " << schedule.size() << " experiments, "
              << totals.misses << " simulations, " << totals.dedupHits
              << " dedup hits, " << totals.diskHits << " disk hits in "
              << Table::num(cli.elapsedSeconds(), 1) << "s\n";

    cli.add("experiment_count",
            json::Value(static_cast<std::uint64_t>(schedule.size())));
    cli.add("smoke", json::Value(smoke));
    cli.add("experiments", std::move(experiments));
    cli.add("experiment_wall_seconds", std::move(wallByExperiment));

    if (!serveSocket.empty()) try {
        json::Value serveStats =
            serve::ServeClient(serveSocket).stats();
        std::cout << "serve: " << serveStats.at("completed").asUint()
                  << " runs served, "
                  << serveStats.at("coalesced").asUint()
                  << " coalesced, cache hit rate "
                  << Table::num(
                         serveStats.at("cache_hit_rate").asDouble(), 2)
                  << "\n";
        cli.add("serve", std::move(serveStats));
        if (servePid > 0)
            serve::stopServeDaemon(servePid, serveSocket);
    } catch (const FatalError &e) {
        std::cerr << "run_matrix: " << e.what() << "\n";
        return 1;
    }

    int rc = cli.finish();
    return firstFailure ? firstFailure : rc;
}
