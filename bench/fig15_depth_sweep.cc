/**
 * @file
 * Figure 15: wish-branch benefit vs pipeline depth (10, 20, 30 stages
 * on a 256-entry window). Deeper pipelines pay more per misprediction,
 * so wish branches gain more.
 */

#include <iostream>

#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/experiments.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(fig15_depth_sweep)

namespace {

int
benchMain(BenchCli &cli)
{
    printBanner(std::cout, "Figure 15: pipeline depth sweep",
                "AVG / AVGnomcf execution time normalized to the "
                "normal-branch binary on the same machine "
                "(256-entry window, input A)");

    Table t({"stages", "series", "AVG", "AVGnomcf"});
    for (unsigned stages : {10u, 20u, 30u}) {
        SimParams machine;
        machine.robSize = 256;
        machine.iqSize = 64;
        machine.lsqSize = 128;
        machine.pipelineStages = stages;

        SimParams perf = machine;
        perf.oracle.perfectConfidence = true;

        std::vector<SeriesSpec> series = {
            {"BASE-DEF", BinaryVariant::BaseDef, machine},
            {"BASE-MAX", BinaryVariant::BaseMax, machine},
            {"wish-jjl(real)", BinaryVariant::WishJumpJoinLoop, machine},
            {"wish-jjl(perf)", BinaryVariant::WishJumpJoinLoop, perf},
        };
        NormalizedResults r =
            runNormalizedExperiment(series, InputSet::A, machine);
        for (std::size_t i = 0; i < series.size(); ++i) {
            t.addRow({std::to_string(stages), series[i].label,
                      Table::num(r.avg[i]), Table::num(r.avgNoMcf[i])});
        }
    }
    t.print(std::cout);
    std::cout << "\nPaper shape: wish-branch improvement grows with "
                 "pipeline depth (8.0% -> 11.0% -> 13.0%).\n";
    cli.addTable("table", t);
    return cli.finish();
}

} // namespace
