/**
 * @file
 * Figure 12: adding wish loops to wish jumps/joins. The headline result
 * of the paper: the wish jump/join/loop binary with a real confidence
 * estimator beats the normal binary by 14.2% on average and the
 * best-performing predicated binary by 13.3%.
 */

#include <iostream>

#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/experiments.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(fig12_wish_loops)

namespace {

int
benchMain(BenchCli &cli)
{
    printBanner(std::cout, "Figure 12: wish jump/join/loop binaries",
                "execution time normalized to the normal-branch binary "
                "(input A)");

    SimParams perfConf;
    perfConf.oracle.perfectConfidence = true;

    std::vector<SeriesSpec> series = {
        {"BASE-DEF", BinaryVariant::BaseDef, SimParams{}},
        {"BASE-MAX", BinaryVariant::BaseMax, SimParams{}},
        {"wish-jj(real)", BinaryVariant::WishJumpJoin, SimParams{}},
        {"wish-jjl(real)", BinaryVariant::WishJumpJoinLoop, SimParams{}},
        {"wish-jjl(perf)", BinaryVariant::WishJumpJoinLoop, perfConf},
    };

    NormalizedResults r = runNormalizedExperiment(series, InputSet::A);
    printNormalized(std::cout, r);

    double vsNormal = (1.0 - r.avg[3]) * 100.0;
    double bestPred = std::min(r.avg[0], r.avg[1]);
    double vsPred = (1.0 - r.avg[3] / bestPred) * 100.0;
    std::cout << "\nwish-jjl(real) improves the average execution time by "
              << Table::num(vsNormal, 1)
              << "% over normal branches (paper: 14.2%) and by "
              << Table::num(vsPred, 1)
              << "% over the best-performing predicated binary "
                 "(paper: 13.3%).\n";
    cli.addResults("results", r);
    cli.add("improvement_vs_normal_pct", json::Value(vsNormal));
    cli.add("improvement_vs_best_pred_pct", json::Value(vsPred));
    return cli.finish();
}

} // namespace
