/**
 * @file
 * Extension study (paper §3.6 / §7 future work): the compile-time wish
 * heuristic. SizeOnly is the paper's evaluated rule (§4.2.2: every
 * suitable hammock becomes a wish branch or predicated code);
 * ProfileAware leaves profile-easy branches as normal branches,
 * avoiding even the wish instructions' overhead when the train profile
 * already shows the branch is trivial.
 */

#include <iostream>

#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(ablation_heuristics)

namespace {

int
benchMain(BenchCli &cli)
{
    printBanner(std::cout, "Extension: compile-time wish heuristics",
                "wish-jjl execution time normalized to the normal "
                "binary, and static wish-branch counts (input A)");

    const std::vector<std::string> &names = workloadNames();
    struct Row
    {
        double rs, rp;
        std::vector<std::string> cells;
    };
    std::vector<Row> rows(names.size());
    ParallelRunner &pool = ParallelRunner::shared();
    pool.forEach(names.size(), [&](std::size_t i) {
        const std::string &name = names[i];
        CompileOptions sizeOnly;
        CompileOptions profAware;
        profAware.wishHeuristic = WishHeuristic::ProfileAware;

        CompiledWorkload ws = compileWorkload(name, sizeOnly);
        CompiledWorkload wp = compileWorkload(name, profAware);

        double base = static_cast<double>(
            run(RunRequest{ws, BinaryVariant::Normal, InputSet::A})
                .result.cycles);
        double rs =
            static_cast<double>(
                run(RunRequest{ws, BinaryVariant::WishJumpJoinLoop,
                               InputSet::A})
                    .result.cycles) /
            base;
        double rp =
            static_cast<double>(
                run(RunRequest{wp, BinaryVariant::WishJumpJoinLoop,
                               InputSet::A})
                    .result.cycles) /
            base;
        rows[i] = {rs, rp,
                   {name, Table::num(rs), Table::num(rp),
                    std::to_string(
                        ws.variants.at(BinaryVariant::WishJumpJoinLoop)
                            .staticWishBranches()),
                    std::to_string(
                        wp.variants.at(BinaryVariant::WishJumpJoinLoop)
                            .staticWishBranches())}};
    });

    Table t({"benchmark", "size-only", "profile-aware", "wish-br(size)",
             "wish-br(profile)"});
    double s1 = 0, s2 = 0;
    for (Row &row : rows) {
        s1 += row.rs;
        s2 += row.rp;
        t.addRow(std::move(row.cells));
    }
    const double n = static_cast<double>(names.size());
    t.addRow({"AVG", Table::num(s1 / n), Table::num(s2 / n), "", ""});
    t.print(std::cout);
    std::cout << "\nProfile-aware compilation emits fewer wish branches; "
                 "whether it wins depends on how well the train profile "
                 "predicts run-time behavior (Figure 1's caveat).\n";
    cli.addTable("table", t);
    return cli.finish();
}

} // namespace
