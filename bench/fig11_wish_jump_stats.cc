/**
 * @file
 * Figure 11: dynamic wish branches (jumps + joins) per 1M retired µops
 * in the wish jump/join binary, classified by confidence estimate and
 * prediction outcome. The paper's two quality conditions: almost no
 * high-confidence branch should actually mispredict (satisfied), while
 * many low-confidence branches are in fact correctly predicted (the
 * real estimator's conservatism — the gap a better estimator closes).
 */

#include <iostream>

#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(fig11_wish_jump_stats)

namespace {

int
benchMain(BenchCli &cli)
{
    printBanner(std::cout,
                "Figure 11: dynamic wish jumps/joins per 1M retired µops",
                "wish jump/join binary, real JRS confidence (input A)");

    const std::vector<std::string> &names = workloadNames();
    std::vector<std::vector<std::string>> rows(names.size());
    ParallelRunner &pool = ParallelRunner::shared();
    pool.forEach(names.size(), [&](std::size_t i) {
        const std::string &name = names[i];
        CompiledWorkload w = compileWorkload(name);
        RunOutcome r =
            run(RunRequest{w, BinaryVariant::WishJumpJoin, InputSet::A});
        double scale =
            1e6 / static_cast<double>(r.result.retiredUops);
        auto per1m = [&](const char *a, const char *b) {
            return Table::num((static_cast<double>(r.stat(a)) +
                               static_cast<double>(r.stat(b))) *
                                  scale,
                              0);
        };
        rows[i] = {name,
                   per1m("wish.jump.low.correct", "wish.join.low.correct"),
                   per1m("wish.jump.low.mispred", "wish.join.low.mispred"),
                   per1m("wish.jump.high.correct",
                         "wish.join.high.correct"),
                   per1m("wish.jump.high.mispred",
                         "wish.join.high.mispred")};
    });

    Table t({"benchmark", "low-correct", "low-mispred", "high-correct",
             "high-mispred"});
    for (auto &row : rows)
        t.addRow(std::move(row));
    t.print(std::cout);
    std::cout << "\nPaper shape: high-mispred is near zero everywhere; "
                 "low-correct is large on several benchmarks (room for a "
                 "better estimator, cf. the perf-conf bars of Fig 10).\n";
    cli.addTable("table", t);
    return cli.finish();
}

} // namespace
