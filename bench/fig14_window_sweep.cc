/**
 * @file
 * Figure 14: wish-branch benefit vs instruction window size (128, 256,
 * 512 entries). Bigger windows raise the misprediction cost (longer
 * refill) and make late exits more likely, so wish branches gain more.
 */

#include <iostream>

#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/experiments.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(fig14_window_sweep)

namespace {

int
benchMain(BenchCli &cli)
{
    printBanner(std::cout, "Figure 14: instruction window sweep",
                "AVG / AVGnomcf execution time normalized to the "
                "normal-branch binary on the same machine (input A)");

    Table t({"window", "series", "AVG", "AVGnomcf"});
    for (unsigned rob : {128u, 256u, 512u}) {
        SimParams machine;
        machine.robSize = rob;
        machine.iqSize = rob / 4;
        machine.lsqSize = rob / 2;

        SimParams perf = machine;
        perf.oracle.perfectConfidence = true;

        std::vector<SeriesSpec> series = {
            {"BASE-DEF", BinaryVariant::BaseDef, machine},
            {"BASE-MAX", BinaryVariant::BaseMax, machine},
            {"wish-jjl(real)", BinaryVariant::WishJumpJoinLoop, machine},
            {"wish-jjl(perf)", BinaryVariant::WishJumpJoinLoop, perf},
        };
        NormalizedResults r =
            runNormalizedExperiment(series, InputSet::A, machine);
        for (std::size_t i = 0; i < series.size(); ++i) {
            t.addRow({std::to_string(rob), series[i].label,
                      Table::num(r.avg[i]), Table::num(r.avgNoMcf[i])});
        }
    }
    t.print(std::cout);
    std::cout << "\nPaper shape: the wish binaries' improvement grows "
                 "with window size (11.4% -> 13.0% -> 14.2%).\n";
    cli.addTable("table", t);
    return cli.finish();
}

} // namespace
