/**
 * @file
 * Figure 13: dynamic wish loops per 1M retired µops in the wish
 * jump/join/loop binary, classified by confidence and misprediction
 * kind. Late-exit is the only case where a wish loop beats a normal
 * backward branch (§3.2); benchmarks with many late exits are exactly
 * the ones wish loops speed up.
 */

#include <iostream>

#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(fig13_wish_loop_stats)

namespace {

int
benchMain(BenchCli &cli)
{
    printBanner(std::cout,
                "Figure 13: dynamic wish loops per 1M retired µops",
                "wish jump/join/loop binary, real JRS confidence "
                "(input A)");

    const std::vector<std::string> &names = workloadNames();
    std::vector<std::vector<std::string>> rows(names.size());
    ParallelRunner &pool = ParallelRunner::shared();
    pool.forEach(names.size(), [&](std::size_t i) {
        const std::string &name = names[i];
        CompiledWorkload w = compileWorkload(name);
        RunOutcome r = run(
            RunRequest{w, BinaryVariant::WishJumpJoinLoop, InputSet::A});
        double scale =
            1e6 / static_cast<double>(r.result.retiredUops);
        auto per1m = [&](const char *k) {
            return Table::num(static_cast<double>(r.stat(k)) * scale, 0);
        };
        rows[i] = {name, per1m("wish.loop.low.correct"),
                   per1m("wish.loop.low.early_exit"),
                   per1m("wish.loop.low.late_exit"),
                   per1m("wish.loop.low.no_exit"),
                   per1m("wish.loop.high.correct"),
                   per1m("wish.loop.high.mispred")};
    });

    Table t({"benchmark", "low-correct", "low-early", "low-late",
             "low-noexit", "high-correct", "high-mispred"});
    for (auto &row : rows)
        t.addRow(std::move(row));
    t.print(std::cout);
    std::cout << "\nPaper shape: benchmarks with many low-confidence "
                 "late-exit loops (vpr/parser/bzip2-like) gain >3% from "
                 "wish loops.\n";
    cli.addTable("table", t);
    return cli.finish();
}

} // namespace
