/**
 * @file
 * Figure 2 cross-check: does direct cycle attribution agree with the
 * paper's re-run-with-oracle-knobs decomposition?
 *
 * Figure 2 quantifies predication's two overheads by *re-running* with
 * idealizations: NO-DEPEND (predicate data dependences removed) and
 * NO-FETCH (predicated-FALSE µops free to fetch). The attribution
 * engine measures the same two overheads *directly* in a single run of
 * the unmodified machine: attrib.pred_wait (issue stalled on a
 * predicate) and attrib.pred_nop (retire slots burned on FALSE µops).
 *
 * The two methods count different things — knob removal measures the
 * *marginal* end-to-end speedup (which goes to zero under a concurrent
 * limiter: removing a dependence buys nothing if fetch bandwidth binds
 * the same cycles), attribution charges each cycle to its *proximate*
 * limiter — so the cross-check asks for *ordering* agreement per
 * benchmark: whichever overhead attribution says dominates should also
 * be the knob whose removal buys more. Rows where the re-run ordering
 * signal |d(no-depend) − d(no-fetch)| is under 2% of cycles carry no
 * decisive signal and are reported but not scored. The paper's shape:
 * dependence effects exceed fetch effects on average, and mcf is
 * dominated by predicate dependences.
 */

#include <iostream>

#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(fig02_attribution)

namespace {

int
benchMain(BenchCli &cli)
{
    printBanner(std::cout,
                "Figure 2 cross-check: direct attribution vs re-run "
                "decomposition",
                "BASE-MAX binary, input A; cycles as % of the BASE-MAX "
                "run");

    const std::vector<std::string> &names = workloadNames();
    struct Row
    {
        bool agree = false;
        bool decisive = false;
        std::vector<std::string> cells;
    };
    std::vector<Row> rows(names.size());
    ParallelRunner &pool = ParallelRunner::shared();
    pool.forEach(names.size(), [&](std::size_t i) {
        const std::string &name = names[i];
        CompiledWorkload w = compileWorkload(name);

        // Direct: one attributed run of the real machine.
        SimParams attr;
        attr.collectAttribution = true;
        RunOutcome direct = run(
            RunRequest{w, BinaryVariant::BaseMax, InputSet::A, attr});
        const double total =
            static_cast<double>(direct.result.cycles);
        const std::uint64_t predWait = direct.require("attrib.pred_wait");
        const std::uint64_t predNop = direct.require("attrib.pred_nop");

        // Re-run: the paper's idealization ladder.
        SimParams noDep;
        noDep.oracle.noDepend = true;
        SimParams noDepNoFetch = noDep;
        noDepNoFetch.oracle.noFetch = true;
        RunOutcome nd = run(
            RunRequest{w, BinaryVariant::BaseMax, InputSet::A, noDep});
        RunOutcome ndnf = run(RunRequest{
            w, BinaryVariant::BaseMax, InputSet::A, noDepNoFetch});
        const std::int64_t dDep =
            static_cast<std::int64_t>(direct.result.cycles) -
            static_cast<std::int64_t>(nd.result.cycles);
        const std::int64_t dFetch =
            static_cast<std::int64_t>(nd.result.cycles) -
            static_cast<std::int64_t>(ndnf.result.cycles);

        const bool directDep = predWait >= predNop;
        const bool rerunDep = dDep >= dFetch;
        rows[i].agree = directDep == rerunDep;
        rows[i].decisive =
            static_cast<double>(dDep > dFetch ? dDep - dFetch
                                              : dFetch - dDep) >=
            0.02 * total;
        auto pct = [&](double v) {
            return Table::num(100.0 * v / total, 1) + "%";
        };
        rows[i].cells = {name,
                         pct(static_cast<double>(predWait)),
                         pct(static_cast<double>(predNop)),
                         pct(static_cast<double>(dDep)),
                         pct(static_cast<double>(dFetch)),
                         directDep ? "depend" : "fetch",
                         rows[i].decisive ? (rerunDep ? "depend" : "fetch")
                                          : "(noise)",
                         !rows[i].decisive ? "-"
                         : rows[i].agree   ? "yes"
                                           : "NO"};
    });

    Table t({"benchmark", "pred-wait", "pred-nop", "d(no-depend)",
             "d(no-fetch)", "direct-says", "rerun-says", "agree"});
    unsigned agreeCount = 0;
    unsigned decisiveCount = 0;
    for (Row &row : rows) {
        if (row.decisive) {
            ++decisiveCount;
            agreeCount += row.agree ? 1 : 0;
        }
        t.addRow(std::move(row.cells));
    }
    t.print(std::cout);
    std::cout << "\nOrdering agreement on " << agreeCount << "/"
              << decisiveCount << " benchmarks with a decisive re-run "
              << "signal (|d(no-depend) - d(no-fetch)| >= 2% of "
              << "cycles).\nPaper shape: dependence overhead dominates "
              << "fetch overhead (mcf most of all).\n";

    cli.addTable("table", t);
    cli.add("agree_count",
            json::Value(static_cast<std::uint64_t>(agreeCount)));
    cli.add("decisive_count",
            json::Value(static_cast<std::uint64_t>(decisiveCount)));
    cli.add("benchmark_count",
            json::Value(static_cast<std::uint64_t>(names.size())));
    return cli.finish();
}

} // namespace
