/**
 * @file
 * Table 4: benchmark characterization — dynamic µop counts, static and
 * dynamic conditional branches, mispredictions per 1K retired µops, µPC
 * (µops per cycle), and the static/dynamic wish-branch population of
 * the wish jump/join/loop binary with the fraction of wish loops.
 */

#include <iostream>

#include "arch/emulator.hh"
#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(table4_benchmarks)

namespace {

int
benchMain(BenchCli &cli)
{
    printBanner(std::cout, "Table 4: simulated benchmarks",
                "normal binary characteristics (input A) and wish "
                "jump/join/loop binary wish-branch population");

    Table t({"benchmark", "dyn-uops", "static-br", "dyn-br",
             "misp/1Kuop", "uPC", "static-wish(%loop)",
             "dyn-wish(%loop)"});

    const std::vector<std::string> &names = workloadNames();
    std::vector<std::vector<std::string>> rows(names.size());
    ParallelRunner &pool = ParallelRunner::shared();
    pool.forEach(names.size(), [&](std::size_t i) {
        const std::string &name = names[i];
        CompiledWorkload w = compileWorkload(name);

        RunOutcome n =
            run(RunRequest{w, BinaryVariant::Normal, InputSet::A});
        const CompiledBinary &wjjl =
            w.variants.at(BinaryVariant::WishJumpJoinLoop);

        // Dynamic wish-branch counts come from a run of the wjjl binary.
        RunOutcome wr = run(
            RunRequest{w, BinaryVariant::WishJumpJoinLoop, InputSet::A});
        auto dynOf = [&](const char *kind) {
            std::uint64_t v = 0;
            for (const char *cls :
                 {".low.correct", ".low.mispred", ".high.correct",
                  ".high.mispred", ".low.early_exit", ".low.late_exit",
                  ".low.no_exit"})
                v += wr.stat(std::string("wish.") + kind + cls);
            return v;
        };
        std::uint64_t dynJump = dynOf("jump");
        std::uint64_t dynJoin = dynOf("join");
        std::uint64_t dynLoop = dynOf("loop");
        std::uint64_t dynWish = dynJump + dynJoin + dynLoop;

        unsigned staticWish = wjjl.staticWishBranches();
        double staticLoopPct =
            staticWish ? 100.0 * wjjl.staticWishLoops / staticWish : 0.0;
        double dynLoopPct =
            dynWish ? 100.0 * static_cast<double>(dynLoop) /
                          static_cast<double>(dynWish)
                    : 0.0;

        rows[i] = {name,
                   std::to_string(n.result.retiredUops),
                   std::to_string(
                       w.variants.at(BinaryVariant::Normal)
                           .staticCondBranches),
                   std::to_string(n.require("core.cond_branches")),
                   Table::num(n.mispredictsPer1K(), 1),
                   Table::num(n.result.ipc(), 2),
                   std::to_string(staticWish) + " (" +
                       Table::num(staticLoopPct, 0) + "%)",
                   std::to_string(dynWish) + " (" +
                       Table::num(dynLoopPct, 0) + "%)"};
    });
    for (auto &row : rows)
        t.addRow(std::move(row));
    t.print(std::cout);
    std::cout << "\nPaper shape: mispredictions per 1K µops vary from "
                 "~1 (gap, vortex) to ~9 (gzip, parser, bzip2).\n";
    cli.addTable("table", t);
    return cli.finish();
}

} // namespace
