/**
 * @file
 * Figure 2: where the overhead of predicated execution comes from.
 *
 *   BASE-MAX             — aggressively predicated binary, all overheads
 *   NO-DEPEND            — predicate data dependences ideally removed
 *   NO-DEPEND+NO-FETCH   — predicated-FALSE µops also cost no fetch
 *   PERFECT-CBP          — normal binary with oracle branch prediction
 *
 * All normalized to the normal-branch binary. The paper's takeaways:
 * predication with all overheads modeled does not beat no-predication on
 * average; removing both overheads makes it clearly win; perfect branch
 * prediction is better still (backward branches cannot be predicated).
 */

#include <iostream>

#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/experiments.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(fig02_overhead_breakdown)

namespace {

int
benchMain(BenchCli &cli)
{
    printBanner(std::cout,
                "Figure 2: overhead sources of predicated execution",
                "execution time normalized to the normal-branch binary "
                "(input A)");

    SimParams noDep;
    noDep.oracle.noDepend = true;

    SimParams noDepNoFetch;
    noDepNoFetch.oracle.noDepend = true;
    noDepNoFetch.oracle.noFetch = true;

    SimParams perfectCbp;
    perfectCbp.oracle.perfectCBP = true;

    std::vector<SeriesSpec> series = {
        {"BASE-MAX", BinaryVariant::BaseMax, SimParams{}},
        {"NO-DEPEND", BinaryVariant::BaseMax, noDep},
        {"NODEP+NOFETCH", BinaryVariant::BaseMax, noDepNoFetch},
        {"PERFECT-CBP", BinaryVariant::Normal, perfectCbp},
    };

    NormalizedResults r = runNormalizedExperiment(series, InputSet::A);
    printNormalized(std::cout, r);
    std::cout << "\nPaper shape: BASE-MAX ~1.0 on average; removing "
                 "dependences then fetch overhead recovers predication's "
                 "win; PERFECT-CBP is best.\n";
    cli.addResults("results", r);
    return cli.finish();
}

} // namespace
