/**
 * @file
 * Table 5: per-benchmark execution-time reduction of the wish
 * jump/join/loop binary over (1) the normal binary, (2) the
 * best-performing *predicated* binary for that benchmark, and (3) the
 * best-performing non-wish binary for that benchmark — the paper's
 * "unrealistic best compiler" comparison (the compiler cannot actually
 * know which binary wins at run time; Figure 1 shows why).
 */

#include <algorithm>
#include <iostream>

#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(table5_best_binary)

namespace {

int
benchMain(BenchCli &cli)
{
    printBanner(std::cout,
                "Table 5: wish jump/join/loop vs best per-benchmark "
                "binary",
                "positive % = wish binary is faster (input A, real "
                "confidence)");

    Table t({"benchmark", "vs normal", "vs best-pred", "best-pred-is",
             "vs best-non-wish", "best-is"});

    const std::vector<std::string> &names = workloadNames();
    struct Row
    {
        double r1, r2, r3;
        std::vector<std::string> cells;
    };
    std::vector<Row> rows(names.size());
    ParallelRunner &pool = ParallelRunner::shared();
    pool.forEach(names.size(), [&](std::size_t i) {
        const std::string &name = names[i];
        CompiledWorkload w = compileWorkload(name);
        double n = static_cast<double>(
            run(RunRequest{w, BinaryVariant::Normal, InputSet::A})
                .result.cycles);
        double d = static_cast<double>(
            run(RunRequest{w, BinaryVariant::BaseDef, InputSet::A})
                .result.cycles);
        double m = static_cast<double>(
            run(RunRequest{w, BinaryVariant::BaseMax, InputSet::A})
                .result.cycles);
        double wjl = static_cast<double>(
            run(RunRequest{w, BinaryVariant::WishJumpJoinLoop,
                           InputSet::A})
                .result.cycles);

        double bestPred = std::min(d, m);
        const char *bestPredName = d <= m ? "DEF" : "MAX";
        double best = std::min(n, bestPred);
        const char *bestName =
            n <= bestPred ? "BR" : bestPredName;

        double r1 = (1.0 - wjl / n) * 100.0;
        double r2 = (1.0 - wjl / bestPred) * 100.0;
        double r3 = (1.0 - wjl / best) * 100.0;
        rows[i] = {r1, r2, r3,
                   {name, Table::num(r1, 1) + "%",
                    Table::num(r2, 1) + "%", bestPredName,
                    Table::num(r3, 1) + "%", bestName}};
    });

    double s1 = 0, s2 = 0, s3 = 0;
    for (Row &row : rows) {
        s1 += row.r1;
        s2 += row.r2;
        s3 += row.r3;
        t.addRow(std::move(row.cells));
    }
    const double count = static_cast<double>(names.size());
    t.addRow({"AVG", Table::num(s1 / count, 1) + "%",
              Table::num(s2 / count, 1) + "%", "",
              Table::num(s3 / count, 1) + "%", ""});
    t.print(std::cout);
    std::cout << "\nPaper: +14.2% vs normal, +6.7% vs best predicated, "
                 "+5.1% vs the best non-wish binary per benchmark.\n";
    cli.addTable("table", t);
    return cli.finish();
}

} // namespace
