/**
 * @file
 * Ablation: confidence-estimator design (DESIGN.md §5.3). Sweeps the
 * history length, the confidence threshold, and the cold-miss policy of
 * the JRS estimator on the benchmarks most sensitive to it. Shows why
 * the default deviates from Table 2's quoted 16-bit history: with a
 * 512-entry table, long histories dilute contexts until the estimator
 * returns its cold-miss default almost always.
 */

#include <iostream>

#include "harness/bench_cli.hh"
#include "harness/bench_registry.hh"
#include "harness/parallel_runner.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace wisc;

WISC_BENCH_ENTRY(ablation_confidence)

namespace {

int
benchMain(BenchCli &cli)
{
    printBanner(std::cout, "Ablation: JRS confidence estimator design",
                "wish-jjl execution time normalized to the normal binary "
                "(input A)");

    const std::vector<std::string> benches = {"vpr", "mcf"};

    std::vector<std::pair<std::string, CompiledWorkload>> compiled;
    for (const auto &b : benches)
        compiled.emplace_back(b, compileWorkload(b));

    std::vector<std::string> headers = {"hist", "thresh", "miss-policy"};
    headers.insert(headers.end(), benches.begin(), benches.end());
    Table t(headers);

    struct Config
    {
        unsigned hist, thresh;
        bool missHigh;
    };
    std::vector<Config> configs;
    for (unsigned hist : {0u, 8u, 16u})
        for (unsigned thresh : {8u, 13u})
            for (bool missHigh : {false, true})
                configs.push_back({hist, thresh, missHigh});

    std::vector<std::vector<std::string>> rows(configs.size());
    ParallelRunner &pool = ParallelRunner::shared();
    pool.forEach(configs.size(), [&](std::size_t i) {
        const Config &c = configs[i];
        std::vector<std::string> row = {
            std::to_string(c.hist), std::to_string(c.thresh),
            c.missHigh ? "high" : "low"};
        for (auto &kv : compiled) {
            SimParams p;
            p.confHistBits = c.hist;
            p.confThreshold = c.thresh;
            p.confMissIsHigh = c.missHigh;
            double n = static_cast<double>(
                run(RunRequest{kv.second, BinaryVariant::Normal,
                               InputSet::A, p})
                    .result.cycles);
            double w = static_cast<double>(
                run(RunRequest{kv.second,
                               BinaryVariant::WishJumpJoinLoop,
                               InputSet::A, p})
                    .result.cycles);
            row.push_back(Table::num(w / n));
        }
        rows[i] = std::move(row);
    });
    for (auto &row : rows)
        t.addRow(std::move(row));
    t.print(std::cout);
    std::cout << "\nDefault: hist=8, threshold=8, miss=low.\n";
    cli.addTable("table", t);
    return cli.finish();
}

} // namespace
